package core

// Canonical configuration encoding. The run ledger (internal/runledger)
// keys every recorded simulation on hash(program bytes, memory image,
// canonical config, workload params); for that key to be a *correct* cache
// key two properties must hold:
//
//   - stability: the same machine always encodes to the same bytes. The
//     encoder therefore works on the *effective* configuration (every
//     defaulted field resolved), so Config{} and the explicit
//     {ThreadSlots: 1, LoadStoreUnits: 1, ...} spell the same machine.
//   - no aliasing: two configs that can produce different results must
//     never encode the same. The encoder enumerates every result-relevant
//     field in declaration order; fields that provably cannot change a
//     completed run's Result — the differential-test knobs and the abort
//     limit — are excluded by name in canonicalExcluded, with the reason.
//
// Both properties are enforced mechanically: TestCanonicalConfigCovers
// checks by reflection that every Config field is either encoded or
// excluded (never both), TestCanonicalConfigGolden pins the byte encoding,
// and the configcanon analyzer (tools/analyzers) fails the build when a
// newly grown Config field is not mentioned in this file at all — growing
// Config without deciding its cache-key status is a vet-time error, not a
// silent cache aliasing bug.

import (
	"fmt"
	"strconv"
	"strings"

	"hirata/internal/isa"
	"hirata/internal/mem"
)

// canonicalField renders one result-relevant Config field of an effective
// (withDefaults-resolved) configuration.
type canonicalField struct {
	name   string
	render func(Config) string
}

func boolField(v bool) string { return strconv.FormatBool(v) }
func intField(v int) string   { return strconv.Itoa(v) }

// cacheField renders a cache configuration in normalized form.
func cacheField(c mem.CacheConfig) string {
	n := c.Normalized()
	return fmt.Sprintf("lines=%d,wpl=%d,access=%d,miss=%d",
		n.Lines, n.WordsPerLine, n.AccessCycles, n.MissPenalty)
}

// canonicalFields lists every result-relevant Config field in struct
// declaration order. Growing Config means adding a row here (or a reasoned
// entry in canonicalExcluded); the coverage test and the configcanon
// analyzer refuse anything else.
var canonicalFields = []canonicalField{
	{"ThreadSlots", func(c Config) string { return intField(c.ThreadSlots) }},
	{"LoadStoreUnits", func(c Config) string { return intField(c.LoadStoreUnits) }},
	{"StandbyStations", func(c Config) string { return boolField(c.StandbyStations) }},
	{"StandbyDepth", func(c Config) string { return intField(c.StandbyDepth) }},
	{"RotationInterval", func(c Config) string { return intField(c.RotationInterval) }},
	{"ExplicitRotation", func(c Config) string { return boolField(c.ExplicitRotation) }},
	{"IssueWidth", func(c Config) string { return intField(c.IssueWidth) }},
	{"PrivateICache", func(c Config) string { return boolField(c.PrivateICache) }},
	{"FetchUnits", func(c Config) string { return intField(c.FetchUnits) }},
	{"QueueDepth", func(c Config) string { return intField(c.QueueDepth) }},
	{"ContextFrames", func(c Config) string { return intField(c.ContextFrames) }},
	{"ContextSwitchCycles", func(c Config) string { return intField(c.ContextSwitchCycles) }},
	{"ICache", func(c Config) string { return cacheField(c.ICache) }},
	{"DCache", func(c Config) string { return cacheField(c.DCache) }},
	{"MaxIssuePerCycle", func(c Config) string { return intField(c.MaxIssuePerCycle) }},
	{"ExtraUnits", func(c Config) string {
		parts := make([]string, 0, isa.NumUnitClasses)
		for u := isa.UnitClass(1); int(u) <= isa.NumUnitClasses; u++ {
			parts = append(parts, fmt.Sprintf("%s=%d", u, c.ExtraUnits[u]))
		}
		return strings.Join(parts, ",")
	}},
}

// canonicalExcluded names the Config fields deliberately absent from the
// canonical encoding, each with the reason it cannot change a completed
// run's Result. The differential test suites are the proof obligations
// behind the first two entries.
var canonicalExcluded = map[string]string{
	"MaxCycles":        "abort limit only: a completed run's Result is identical under any limit it fits in; aborted runs return an error and are never recorded",
	"DisableCycleSkip": "quiescent-cycle skipping is cycle-exact (differential_test.go); the flag selects the reference path, not a different machine",
	"DisableEventCore": "the event-driven core is bit-identical to the legacy scan core (TestEventCoreDifferential*); the flag selects the reference path, not a different machine",
	"StrictVerify":     "gates whether a run starts, never what a completed run computes",
}

// CanonicalConfig renders the result-relevant fields of the effective
// configuration as byte-stable "name=value" lines, one field per line in
// struct declaration order. Two configurations with equal CanonicalConfig
// strings are guaranteed to produce bit-identical Results for any program;
// the run ledger hashes this string into every run key.
func (c Config) CanonicalConfig() string {
	return strings.Join(c.CanonicalLines(), "\n")
}

// CanonicalLines is CanonicalConfig split into its per-field lines — the
// form run records embed so config diffs can name the fields that changed.
func (c Config) CanonicalLines() []string {
	eff := c.withDefaults()
	lines := make([]string, 0, len(canonicalFields))
	for _, f := range canonicalFields {
		lines = append(lines, f.name+"="+f.render(eff))
	}
	return lines
}
