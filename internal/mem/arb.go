package mem

import "hirata/internal/isa"

// AccessRequirement records one outstanding load/store instruction, copied
// into the access requirement buffer when the instruction is issued by a
// running thread (§2.1.3). If the thread is switched out while the access is
// in flight, the requirement is saved as part of the context and re-executed
// on resume, which is what makes context switches restartable.
type AccessRequirement struct {
	Instr isa.Instruction // the load/store instruction
	PC    int64           // its program counter, for diagnostics and replay
	Seq   uint64          // per-thread issue sequence number
}

// AccessRequirementBuffer holds the outstanding memory access requirements
// of one context frame, in issue order.
type AccessRequirementBuffer struct {
	entries []AccessRequirement
}

// Add records an issued load/store.
func (b *AccessRequirementBuffer) Add(r AccessRequirement) {
	b.entries = append(b.entries, r)
}

// Complete removes the requirement with the given sequence number; it
// reports whether an entry was removed.
func (b *AccessRequirementBuffer) Complete(seq uint64) bool {
	for i, e := range b.entries {
		if e.Seq == seq {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Pending returns the outstanding requirements in issue order. The returned
// slice is a copy and remains valid after further buffer operations.
func (b *AccessRequirementBuffer) Pending() []AccessRequirement {
	out := make([]AccessRequirement, len(b.entries))
	copy(out, b.entries)
	return out
}

// Len returns the number of outstanding requirements.
func (b *AccessRequirementBuffer) Len() int { return len(b.entries) }

// Clear drops all outstanding requirements.
func (b *AccessRequirementBuffer) Clear() { b.entries = b.entries[:0] }
