package mem

import "fmt"

// CacheAccessCycles is the paper's cache access time C: both the instruction
// and the data cache take two cycles per access (§2.1.1, §2.1.2).
const CacheAccessCycles = 2

// CacheConfig configures a Cache model.
//
// The zero value describes the paper's simulation assumption: a perfect
// cache (every access hits) with a 2-cycle access time. Setting Lines > 0
// enables a finite direct-mapped cache — the extension the paper lists as
// future work ("we are currently working on evaluating finite cache
// effects").
type CacheConfig struct {
	Lines        int // number of direct-mapped lines; 0 = perfect cache
	WordsPerLine int // words per line; 0 defaults to 4
	AccessCycles int // hit access time; 0 defaults to CacheAccessCycles
	MissPenalty  int // extra cycles on a miss; 0 defaults to 20
}

// Normalized returns the configuration with every defaulted field resolved
// to the value the cache model actually runs with — the form canonical
// encodings (internal/core's CanonicalConfig) compare and hash, so a zero
// CacheConfig and an explicit {0, 4, 2, 20} map to the same identity.
func (c CacheConfig) Normalized() CacheConfig { return c.normalised() }

// normalised fills in defaults.
func (c CacheConfig) normalised() CacheConfig {
	if c.WordsPerLine <= 0 {
		c.WordsPerLine = 4
	}
	if c.AccessCycles <= 0 {
		c.AccessCycles = CacheAccessCycles
	}
	if c.MissPenalty <= 0 {
		c.MissPenalty = 20
	}
	return c
}

// Cache is a simple direct-mapped cache timing model. It tracks only tags —
// data always comes from the backing Memory (the simulator is
// execution-driven, so the cache affects timing, never values).
type Cache struct {
	cfg    CacheConfig
	tags   []int64 // tag per line; -1 = invalid
	hits   uint64
	misses uint64
}

// NewCache builds a cache from cfg (see CacheConfig for defaults).
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.normalised()
	c := &Cache{cfg: cfg}
	if cfg.Lines > 0 {
		c.tags = make([]int64, cfg.Lines)
		for i := range c.tags {
			c.tags[i] = -1
		}
	}
	return c
}

// Perfect reports whether the cache always hits.
func (c *Cache) Perfect() bool { return c.cfg.Lines == 0 }

// Access simulates one access to addr and returns its latency in cycles.
// For a perfect cache this is always the configured access time.
func (c *Cache) Access(addr int64) int {
	if c.Perfect() {
		c.hits++
		return c.cfg.AccessCycles
	}
	if addr < 0 {
		panic(fmt.Sprintf("mem: negative cache address %d", addr))
	}
	block := addr / int64(c.cfg.WordsPerLine)
	line := block % int64(c.cfg.Lines)
	if c.tags[line] == block {
		c.hits++
		return c.cfg.AccessCycles
	}
	c.misses++
	c.tags[line] = block
	return c.cfg.AccessCycles + c.cfg.MissPenalty
}

// Probe reports whether addr would hit, without updating state.
func (c *Cache) Probe(addr int64) bool {
	if c.Perfect() {
		return true
	}
	block := addr / int64(c.cfg.WordsPerLine)
	return c.tags[block%int64(c.cfg.Lines)] == block
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.hits, c.misses = 0, 0
}

// Hits returns the number of accesses that hit.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of accesses that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns the fraction of accesses that hit, or 1 if none occurred.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 1
	}
	return float64(c.hits) / float64(total)
}
