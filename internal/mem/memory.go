// Package mem provides the memory-system substrates of the simulated
// machine: word-addressed main memory with an optional remote region (for
// the distributed-shared-memory latencies that motivate concurrent
// multithreading), instruction/data cache models, and the access
// requirement buffer used to restart threads after a context switch.
//
// The paper's evaluation assumes all cache accesses hit (§3.1); the cache
// types here therefore default to perfect behaviour with the paper's
// 2-cycle access time, and additionally implement a finite direct-mapped
// mode used by this repository's "finite cache effects" extension (the
// paper lists that study as work in progress).
package mem

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Memory is a word-addressed main memory. One word holds 64 bits: either an
// integer register value or a raw float64 image. Addresses are word indices.
//
// Addresses at or above RemoteBase model remote memory in a distributed
// shared memory system: functionally identical, but flagged so the processor
// can take a data-absence trap and switch contexts (§2.1.3). RemoteBase == 0
// disables the remote region (RemoteBase <= 0 is normalised to "none").
type Memory struct {
	words      []uint64
	remoteBase int64 // first remote address; <0 means no remote region
	remoteLat  int   // extra cycles for a remote access
}

// DefaultRemoteLatency is the remote-access latency used when a Memory is
// built with a remote region but no explicit latency.
const DefaultRemoteLatency = 100

// NewMemory allocates a zeroed memory of the given number of words.
func NewMemory(words int) *Memory {
	if words <= 0 {
		panic(fmt.Sprintf("mem: invalid memory size %d", words))
	}
	return &Memory{words: make([]uint64, words), remoteBase: -1}
}

// NewMemoryWithRemote allocates a memory whose addresses >= remoteBase are
// remote with the given extra latency.
func NewMemoryWithRemote(words int, remoteBase int64, latency int) *Memory {
	m := NewMemory(words)
	if remoteBase >= 0 {
		if latency <= 0 {
			latency = DefaultRemoteLatency
		}
		m.remoteBase = remoteBase
		m.remoteLat = latency
	}
	return m
}

// Size returns the memory size in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// RemoteBase returns the first remote address, or -1 when the memory has no
// remote region.
func (m *Memory) RemoteBase() int64 {
	if m.remoteBase < 0 {
		return -1
	}
	return m.remoteBase
}

// WriteImage writes the full memory image to w as big-endian 64-bit words.
// The byte stream is a pure function of the memory contents, so hashing it
// yields a content address for the machine's initial (or final) data state;
// internal/runledger keys run records on the pre-run image.
func (m *Memory) WriteImage(w io.Writer) error {
	var buf [8]byte
	for _, v := range m.words {
		binary.BigEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// check validates an address.
func (m *Memory) check(addr int64) error {
	if addr < 0 || addr >= int64(len(m.words)) {
		return fmt.Errorf("mem: address %d out of range [0, %d)", addr, len(m.words))
	}
	return nil
}

// Load reads the word at addr.
func (m *Memory) Load(addr int64) (uint64, error) {
	if err := m.check(addr); err != nil {
		return 0, err
	}
	return m.words[addr], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr int64, v uint64) error {
	if err := m.check(addr); err != nil {
		return err
	}
	m.words[addr] = v
	return nil
}

// LoadInt reads addr as a signed integer.
func (m *Memory) LoadInt(addr int64) (int64, error) {
	v, err := m.Load(addr)
	return int64(v), err
}

// StoreInt writes a signed integer at addr.
func (m *Memory) StoreInt(addr int64, v int64) error {
	return m.Store(addr, uint64(v))
}

// LoadFloat reads addr as a float64.
func (m *Memory) LoadFloat(addr int64) (float64, error) {
	v, err := m.Load(addr)
	return math.Float64frombits(v), err
}

// StoreFloat writes a float64 at addr.
func (m *Memory) StoreFloat(addr int64, v float64) error {
	return m.Store(addr, math.Float64bits(v))
}

// SetInt is a convenience initialiser that panics on a bad address; intended
// for test and workload setup code.
func (m *Memory) SetInt(addr int64, v int64) {
	if err := m.StoreInt(addr, v); err != nil {
		panic(err)
	}
}

// SetFloat is a convenience initialiser that panics on a bad address.
func (m *Memory) SetFloat(addr int64, v float64) {
	if err := m.StoreFloat(addr, v); err != nil {
		panic(err)
	}
}

// IntAt is a convenience accessor that panics on a bad address.
func (m *Memory) IntAt(addr int64) int64 {
	v, err := m.LoadInt(addr)
	if err != nil {
		panic(err)
	}
	return v
}

// FloatAt is a convenience accessor that panics on a bad address.
func (m *Memory) FloatAt(addr int64) float64 {
	v, err := m.LoadFloat(addr)
	if err != nil {
		panic(err)
	}
	return v
}

// IsRemote reports whether addr falls in the remote region.
func (m *Memory) IsRemote(addr int64) bool {
	return m.remoteBase >= 0 && addr >= m.remoteBase
}

// RemoteLatency returns the extra access latency of the remote region.
func (m *Memory) RemoteLatency() int { return m.remoteLat }
