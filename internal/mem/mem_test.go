package mem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hirata/internal/isa"
)

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory(64)
	if m.Size() != 64 {
		t.Fatalf("Size = %d, want 64", m.Size())
	}
	if err := m.StoreInt(10, -12345); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadInt(10)
	if err != nil || v != -12345 {
		t.Fatalf("LoadInt = %d, %v; want -12345", v, err)
	}
	if err := m.StoreFloat(11, 3.25); err != nil {
		t.Fatal(err)
	}
	f, err := m.LoadFloat(11)
	if err != nil || f != 3.25 {
		t.Fatalf("LoadFloat = %g, %v; want 3.25", f, err)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(8)
	for _, addr := range []int64{-1, 8, 1 << 40} {
		if _, err := m.Load(addr); err == nil {
			t.Errorf("Load(%d) succeeded, want error", addr)
		}
		if err := m.Store(addr, 1); err == nil {
			t.Errorf("Store(%d) succeeded, want error", addr)
		}
	}
}

// Property: a store followed by a load at the same address returns the
// stored value, and stores do not disturb other addresses.
func TestMemoryStoreLoadProperty(t *testing.T) {
	m := NewMemory(256)
	shadow := make(map[int64]uint64)
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		addr := int64(rng.Intn(256))
		v := rng.Uint64()
		if err := m.Store(addr, v); err != nil {
			return false
		}
		shadow[addr] = v
		for a, want := range shadow {
			got, err := m.Load(a)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTripProperty(t *testing.T) {
	m := NewMemory(4)
	f := func(x float64) bool {
		m.SetFloat(0, x)
		got := m.FloatAt(0)
		return got == x || (math.IsNaN(x) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoteRegion(t *testing.T) {
	m := NewMemoryWithRemote(100, 50, 80)
	if m.IsRemote(49) {
		t.Error("address 49 classified remote")
	}
	if !m.IsRemote(50) || !m.IsRemote(99) {
		t.Error("remote addresses classified local")
	}
	if m.RemoteLatency() != 80 {
		t.Errorf("RemoteLatency = %d, want 80", m.RemoteLatency())
	}
	// Remote addresses remain functional.
	m.SetInt(60, 7)
	if m.IntAt(60) != 7 {
		t.Error("remote store/load failed")
	}

	noRemote := NewMemory(10)
	if noRemote.IsRemote(5) {
		t.Error("plain memory reported remote addresses")
	}
	defaulted := NewMemoryWithRemote(10, 5, 0)
	if defaulted.RemoteLatency() != DefaultRemoteLatency {
		t.Errorf("default remote latency = %d, want %d", defaulted.RemoteLatency(), DefaultRemoteLatency)
	}
}

func TestPerfectCache(t *testing.T) {
	c := NewCache(CacheConfig{})
	if !c.Perfect() {
		t.Fatal("zero config should be a perfect cache")
	}
	for i := int64(0); i < 1000; i++ {
		if lat := c.Access(i * 997); lat != CacheAccessCycles {
			t.Fatalf("perfect cache access latency = %d, want %d", lat, CacheAccessCycles)
		}
	}
	if c.HitRate() != 1 {
		t.Errorf("perfect cache hit rate = %g, want 1", c.HitRate())
	}
	if !c.Probe(12345) {
		t.Error("perfect cache probe missed")
	}
}

func TestFiniteCache(t *testing.T) {
	c := NewCache(CacheConfig{Lines: 4, WordsPerLine: 2, AccessCycles: 2, MissPenalty: 10})
	if c.Perfect() {
		t.Fatal("finite cache reported perfect")
	}
	// First access: miss.
	if lat := c.Access(0); lat != 12 {
		t.Errorf("cold access latency = %d, want 12", lat)
	}
	// Same line: hit.
	if lat := c.Access(1); lat != 2 {
		t.Errorf("same-line access latency = %d, want 2", lat)
	}
	// Conflicting line (4 lines * 2 words = 8 words span): address 16 maps to line 0.
	if lat := c.Access(16); lat != 12 {
		t.Errorf("conflict access latency = %d, want 12", lat)
	}
	// Original line evicted.
	if lat := c.Access(0); lat != 12 {
		t.Errorf("post-eviction access latency = %d, want 12", lat)
	}
	if c.Hits() != 1 || c.Misses() != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", c.Hits(), c.Misses())
	}
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset did not clear statistics")
	}
	if c.Probe(0) {
		t.Error("Probe hit after Reset")
	}
}

// Property: cache timing never depends on data, and a repeated access
// immediately after a miss always hits (direct-mapped determinism).
func TestCacheRepeatHitProperty(t *testing.T) {
	c := NewCache(CacheConfig{Lines: 16, WordsPerLine: 4})
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		addr := int64(rng.Intn(1 << 20))
		c.Access(addr)
		return c.Access(addr) == CacheAccessCycles && c.Probe(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccessRequirementBuffer(t *testing.T) {
	var b AccessRequirementBuffer
	mk := func(seq uint64) AccessRequirement {
		return AccessRequirement{
			Instr: isa.Instruction{Op: isa.LW, Rd: isa.R1, Rs1: isa.R2},
			PC:    int64(seq * 10),
			Seq:   seq,
		}
	}
	for i := uint64(1); i <= 4; i++ {
		b.Add(mk(i))
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if !b.Complete(2) {
		t.Fatal("Complete(2) = false")
	}
	if b.Complete(2) {
		t.Fatal("Complete(2) twice = true")
	}
	got := b.Pending()
	want := []uint64{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Pending len = %d, want %d", len(got), len(want))
	}
	for i, seq := range want {
		if got[i].Seq != seq {
			t.Errorf("Pending[%d].Seq = %d, want %d (order must be preserved)", i, got[i].Seq, seq)
		}
	}
	// Pending must be a snapshot.
	b.Clear()
	if b.Len() != 0 {
		t.Error("Clear left entries")
	}
	if len(got) != 3 {
		t.Error("Pending snapshot aliased the buffer")
	}
}
