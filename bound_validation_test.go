package hirata_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hirata"
)

// This file is the differential half of the static bound analysis
// (internal/lint/bound.go): for every program we can run — shipped
// examples, paper workloads, and the MinC fuzz corpus — the static lower
// bound must not exceed the measured cycle count. A violation means the
// "certificate" certifies something false, which is a bug in the
// analysis, never in the program.

// boundConfigs are the machine shapes each program is checked under.
var boundConfigs = []hirata.MTConfig{
	{ThreadSlots: 1},
	{ThreadSlots: 4, StandbyStations: true},
	{ThreadSlots: 4, IssueWidth: 2, LoadStoreUnits: 2, StandbyStations: true},
}

// assertBound runs the program and checks the certificate. Programs that
// fail to run under a shape (wrong slot count for a compiled-in ring,
// MaxCycles on a mismatched configuration) are skipped: the bound only
// speaks about executions that exist.
func assertBound(t *testing.T, cfg hirata.MTConfig, text []hirata.Instruction, m *hirata.Memory, pcs ...int64) {
	t.Helper()
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 20_000_000
	}
	res, err := hirata.RunMT(cfg, text, m, pcs...)
	if err != nil {
		t.Skipf("run failed (%v); nothing to certify", err)
	}
	b := hirata.StaticBounds(cfg, text, pcs...)
	if b.Unbounded {
		t.Fatalf("bound analysis says unbounded, but the run finished in %d cycles", res.Cycles)
	}
	if b.Bound < 0 || uint64(b.Bound) > res.Cycles {
		t.Fatalf("static lower bound %d exceeds measured %d cycles\n%s", b.Bound, res.Cycles, b.Format())
	}
	if b.Bound <= 0 {
		t.Fatalf("degenerate bound %d for a %d-cycle run", b.Bound, res.Cycles)
	}
}

// TestBoundExamples covers every shipped example program, assembly and
// MinC alike, under each machine shape.
func TestBoundExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		ext := filepath.Ext(file)
		if ext != ".s" && ext != ".mc" {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var prog *hirata.Program
		if ext == ".mc" {
			prog, err = hirata.CompileMinC(string(src))
		} else {
			prog, err = hirata.Assemble(string(src))
		}
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, cfg := range boundConfigs {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/S%dxD%d", filepath.Base(file), cfg.ThreadSlots, max(cfg.IssueWidth, 1)), func(t *testing.T) {
				m, err := prog.NewMemory(4096)
				if err != nil {
					t.Fatal(err)
				}
				hirata.SetMinCThreads(prog, m, cfg.ThreadSlots)
				assertBound(t, cfg, prog.Text, m)
			})
		}
	}
}

// TestBoundWorkloads covers the paper workload generators, sequential and
// parallel variants, on the machine shapes their experiments use.
func TestBoundWorkloads(t *testing.T) {
	type run struct {
		name string
		cfg  hirata.MTConfig
		prog *hirata.Program
		mem  func(threads int) (*hirata.Memory, error)
	}
	var runs []run

	rc, err := hirata.BuildRecurrence(hirata.RecurrenceConfig{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs,
		run{"recurrence-seq", hirata.MTConfig{ThreadSlots: 1, StandbyStations: true}, rc.Seq,
			func(n int) (*hirata.Memory, error) { return rc.NewMemory(rc.Seq, n) }},
		run{"recurrence-par", hirata.MTConfig{ThreadSlots: 4, StandbyStations: true}, rc.Par,
			func(n int) (*hirata.Memory, error) { return rc.NewMemory(rc.Par, n) }},
	)

	lv, err := hirata.BuildLivermore(hirata.LivermoreConfig{N: 32, Threads: 4, LoadStoreUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs,
		run{"livermore-seq", hirata.MTConfig{ThreadSlots: 1, LoadStoreUnits: 1, StandbyStations: true}, lv.Seq,
			func(int) (*hirata.Memory, error) { return lv.Seq.NewMemory(64) }},
		run{"livermore-par", hirata.MTConfig{ThreadSlots: 4, LoadStoreUnits: 1, StandbyStations: true}, lv.Par,
			func(int) (*hirata.Memory, error) { return lv.Par.NewMemory(64) }},
	)

	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{Spheres: 4, Rays: 16})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs,
		run{"raytrace-seq", hirata.MTConfig{ThreadSlots: 1, LoadStoreUnits: 2, StandbyStations: true}, rt.Seq,
			func(n int) (*hirata.Memory, error) { return rt.NewMemory(rt.Seq, n) }},
		run{"raytrace-par", hirata.MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}, rt.Par,
			func(n int) (*hirata.Memory, error) { return rt.NewMemory(rt.Par, n) }},
	)

	ll, err := hirata.BuildLinkedList(hirata.LinkedListConfig{Nodes: 32, BreakAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs,
		run{"linkedlist-seq", hirata.MTConfig{ThreadSlots: 1, StandbyStations: true}, ll.Seq,
			func(n int) (*hirata.Memory, error) { return ll.NewMemory(ll.Seq, n) }},
		run{"linkedlist-par", hirata.MTConfig{ThreadSlots: 4, StandbyStations: true}, ll.Par,
			func(n int) (*hirata.Memory, error) { return ll.NewMemory(ll.Par, n) }},
	)

	rd, err := hirata.BuildRadiosity(hirata.RadiosityConfig{Patches: 8, Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	runs = append(runs,
		run{"radiosity", hirata.MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}, rd.Prog,
			func(n int) (*hirata.Memory, error) { return rd.NewMemory(n) }},
	)

	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			m, err := r.mem(r.cfg.ThreadSlots)
			if err != nil {
				t.Fatal(err)
			}
			assertBound(t, r.cfg, r.prog.Text, m)
		})
	}
}

// TestBoundFuzzCorpus replays the MinC fuzz corpus: whatever the fuzzer
// found that compiles and runs must also satisfy the certificate.
func TestBoundFuzzCorpus(t *testing.T) {
	dir := filepath.Join("internal", "minc", "testdata", "fuzz", "FuzzCompile")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src, ok := corpusString(string(data))
		if !ok {
			continue
		}
		prog, err := hirata.CompileMinC(src)
		if err != nil {
			continue // the fuzzer keeps crashers and rejects alike
		}
		for _, cfg := range boundConfigs {
			cfg := cfg
			cfg.MaxCycles = 2_000_000
			t.Run(fmt.Sprintf("%s/S%d", e.Name(), cfg.ThreadSlots), func(t *testing.T) {
				m, err := prog.NewMemory(4096)
				if err != nil {
					t.Skipf("memory: %v", err)
				}
				hirata.SetMinCThreads(prog, m, cfg.ThreadSlots)
				assertBound(t, cfg, prog.Text, m)
			})
		}
	}
}

// corpusString extracts the string argument from a go-fuzz corpus file
// ("go test fuzz v1" followed by one string(...) line).
func corpusString(data string) (string, bool) {
	for _, line := range strings.Split(data, "\n") {
		rest, ok := strings.CutPrefix(line, "string(")
		if !ok {
			continue
		}
		rest = strings.TrimSuffix(rest, ")")
		s, err := strconv.Unquote(rest)
		if err != nil {
			return "", false
		}
		return s, true
	}
	return "", false
}
