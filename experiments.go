package hirata

import (
	"fmt"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/risc"
)

// Table2Config parameterises the parallel-multithreading speed-up study
// (paper §3.2, Table 2).
type Table2Config struct {
	Workload RayTraceConfig
	// Slots lists the thread-slot counts (paper: 2, 4, 8).
	Slots []int
	// RotationInterval for the instruction schedule units (paper: 8).
	RotationInterval int
	// PrivateICache runs the per-slot instruction cache variant.
	PrivateICache bool
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Slots) == 0 {
		c.Slots = []int{2, 4, 8}
	}
	if c.RotationInterval <= 0 {
		c.RotationInterval = core.DefaultRotationInterval
	}
	return c
}

// Table2Cell is one measurement of Table 2.
type Table2Cell struct {
	Slots          int
	LoadStoreUnits int
	Standby        bool
	Cycles         uint64
	Speedup        float64 // vs sequential execution on the baseline RISC
	BusiestClass   isa.UnitClass
	BusiestUtil    float64 // percent
}

// Table2 is the full reproduction of Table 2.
type Table2 struct {
	Config        Table2Config
	BaselineCycle [3]uint64 // sequential cycles, indexed by load/store units (1, 2)
	Cells         []Table2Cell
}

// Cell returns the measurement for a configuration.
func (t *Table2) Cell(slots, lsUnits int, standby bool) (Table2Cell, bool) {
	for _, c := range t.Cells {
		if c.Slots == slots && c.LoadStoreUnits == lsUnits && c.Standby == standby {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// RunTable2 reproduces Table 2: speed-up of 2/4/8 thread slots over
// sequential execution, with one or two load/store units, with and without
// standby stations.
func RunTable2(cfg Table2Config) (*Table2, error) {
	cfg = cfg.withDefaults()
	rt, err := BuildRayTrace(cfg.Workload)
	if err != nil {
		return nil, err
	}
	out := &Table2{Config: cfg}

	for _, ls := range []int{1, 2} {
		m, err := rt.NewMemory(rt.Seq, 1)
		if err != nil {
			return nil, err
		}
		res, err := RunRISC(risc.Config{LoadStoreUnits: ls}, rt.Seq.Text, m)
		if err != nil {
			return nil, fmt.Errorf("table 2 baseline (%d ls): %w", ls, err)
		}
		out.BaselineCycle[ls] = res.Cycles
	}

	for _, slots := range cfg.Slots {
		for _, ls := range []int{1, 2} {
			for _, standby := range []bool{false, true} {
				m, err := rt.NewMemory(rt.Par, slots)
				if err != nil {
					return nil, err
				}
				res, err := RunMT(core.Config{
					ThreadSlots:      slots,
					LoadStoreUnits:   ls,
					StandbyStations:  standby,
					RotationInterval: cfg.RotationInterval,
					PrivateICache:    cfg.PrivateICache,
				}, rt.Par.Text, m)
				if err != nil {
					return nil, fmt.Errorf("table 2 (%d slots, %d ls, standby=%v): %w", slots, ls, standby, err)
				}
				busiest := res.BusiestUnit()
				out.Cells = append(out.Cells, Table2Cell{
					Slots:          slots,
					LoadStoreUnits: ls,
					Standby:        standby,
					Cycles:         res.Cycles,
					Speedup:        float64(out.BaselineCycle[ls]) / float64(res.Cycles),
					BusiestClass:   busiest.Class,
					BusiestUtil:    busiest.Utilization(res.Cycles),
				})
			}
		}
	}
	return out, nil
}

// Table3Config parameterises the hybrid superscalar × multithreading study
// (paper §3.3, Table 3): (D,S)-processors with D·S instruction issue slots
// and eight functional units.
type Table3Config struct {
	Workload RayTraceConfig
	// Products lists the D·S budgets to sweep (paper: 2, 4, 8).
	Products []int
}

func (c Table3Config) withDefaults() Table3Config {
	if len(c.Products) == 0 {
		c.Products = []int{2, 4, 8}
	}
	return c
}

// Table3Cell is one (D,S) measurement.
type Table3Cell struct {
	IssueWidth int // D
	Slots      int // S
	Cycles     uint64
	Speedup    float64
}

// Table3 is the full reproduction of Table 3.
type Table3 struct {
	Config        Table3Config
	BaselineCycle uint64
	Cells         []Table3Cell
}

// Cell returns the (D,S) measurement.
func (t *Table3) Cell(d, s int) (Table3Cell, bool) {
	for _, c := range t.Cells {
		if c.IssueWidth == d && c.Slots == s {
			return c, true
		}
	}
	return Table3Cell{}, false
}

// RunTable3 reproduces Table 3. All processors use two load/store units
// (eight functional units) and standby stations; the baseline is the
// sequential RISC machine with the same unit complement.
func RunTable3(cfg Table3Config) (*Table3, error) {
	cfg = cfg.withDefaults()
	rt, err := BuildRayTrace(cfg.Workload)
	if err != nil {
		return nil, err
	}
	out := &Table3{Config: cfg}

	m, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	base, err := RunRISC(risc.Config{LoadStoreUnits: 2}, rt.Seq.Text, m)
	if err != nil {
		return nil, err
	}
	out.BaselineCycle = base.Cycles

	for _, prod := range cfg.Products {
		for d := 1; d <= prod; d *= 2 {
			s := prod / d
			m, err := rt.NewMemory(rt.Par, s)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{
				ThreadSlots:     s,
				LoadStoreUnits:  2,
				StandbyStations: true,
				IssueWidth:      d,
			}, rt.Par.Text, m)
			if err != nil {
				return nil, fmt.Errorf("table 3 (D=%d, S=%d): %w", d, s, err)
			}
			out.Cells = append(out.Cells, Table3Cell{
				IssueWidth: d,
				Slots:      s,
				Cycles:     res.Cycles,
				Speedup:    float64(out.BaselineCycle) / float64(res.Cycles),
			})
		}
	}
	return out, nil
}

// CurveCell is one point of the speed-up-versus-slots curve (Table 2's
// data as a dense sweep, suitable for plotting).
type CurveCell struct {
	Slots     int
	SpeedupL1 float64 // one load/store unit
	SpeedupL2 float64 // two load/store units
}

// RunSpeedupCurve sweeps thread slots 1..maxSlots with standby stations on.
func RunSpeedupCurve(w RayTraceConfig, maxSlots int) ([]CurveCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	var base [3]uint64
	for _, ls := range []int{1, 2} {
		m, err := rt.NewMemory(rt.Seq, 1)
		if err != nil {
			return nil, err
		}
		res, err := RunRISC(risc.Config{LoadStoreUnits: ls}, rt.Seq.Text, m)
		if err != nil {
			return nil, err
		}
		base[ls] = res.Cycles
	}
	var out []CurveCell
	for s := 1; s <= maxSlots; s++ {
		cell := CurveCell{Slots: s}
		for _, ls := range []int{1, 2} {
			m, err := rt.NewMemory(rt.Par, s)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{
				ThreadSlots:     s,
				LoadStoreUnits:  ls,
				StandbyStations: true,
			}, rt.Par.Text, m)
			if err != nil {
				return nil, fmt.Errorf("curve (%d slots, %d ls): %w", s, ls, err)
			}
			sp := float64(base[ls]) / float64(res.Cycles)
			if ls == 1 {
				cell.SpeedupL1 = sp
			} else {
				cell.SpeedupL2 = sp
			}
		}
		out = append(out, cell)
	}
	return out, nil
}
