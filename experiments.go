package hirata

import (
	"fmt"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/risc"
)

// Table2Config parameterises the parallel-multithreading speed-up study
// (paper §3.2, Table 2).
type Table2Config struct {
	Workload RayTraceConfig
	// Slots lists the thread-slot counts (paper: 2, 4, 8).
	Slots []int
	// RotationInterval for the instruction schedule units (paper: 8).
	RotationInterval int
	// PrivateICache runs the per-slot instruction cache variant.
	PrivateICache bool
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Slots) == 0 {
		c.Slots = []int{2, 4, 8}
	}
	if c.RotationInterval <= 0 {
		c.RotationInterval = core.DefaultRotationInterval
	}
	return c
}

// Table2Cell is one measurement of Table 2.
type Table2Cell struct {
	Slots          int
	LoadStoreUnits int
	Standby        bool
	Cycles         uint64
	Speedup        float64 // vs sequential execution on the baseline RISC
	BusiestClass   isa.UnitClass
	BusiestUtil    float64 // percent
}

// Table2 is the full reproduction of Table 2.
type Table2 struct {
	Config        Table2Config
	BaselineCycle [3]uint64 // sequential cycles, indexed by load/store units (1, 2)
	Cells         []Table2Cell
}

// Cell returns the measurement for a configuration.
func (t *Table2) Cell(slots, lsUnits int, standby bool) (Table2Cell, bool) {
	for _, c := range t.Cells {
		if c.Slots == slots && c.LoadStoreUnits == lsUnits && c.Standby == standby {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// RunTable2 reproduces Table 2: speed-up of 2/4/8 thread slots over
// sequential execution, with one or two load/store units, with and without
// standby stations.
func RunTable2(cfg Table2Config) (*Table2, error) {
	cfg = cfg.withDefaults()
	rt, err := BuildRayTrace(cfg.Workload)
	if err != nil {
		return nil, err
	}
	out := &Table2{Config: cfg}

	// Every baseline and table cell is an independent simulation; enumerate
	// them in the original loop order and run the grid on the sweep engine.
	type spec struct {
		baseline  bool
		slots, ls int
		standby   bool
	}
	specs := []spec{{baseline: true, ls: 1}, {baseline: true, ls: 2}}
	for _, slots := range cfg.Slots {
		for _, ls := range []int{1, 2} {
			for _, standby := range []bool{false, true} {
				specs = append(specs, spec{slots: slots, ls: ls, standby: standby})
			}
		}
	}
	type meas struct {
		cycles  uint64
		busiest core.UnitStat
	}
	results, err := runCells(len(specs), func(i int) (meas, error) {
		sp := specs[i]
		if sp.baseline {
			m, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return meas{}, err
			}
			res, err := RunRISC(risc.Config{LoadStoreUnits: sp.ls}, rt.Seq.Text, m)
			if err != nil {
				return meas{}, fmt.Errorf("table 2 baseline (%d ls): %w", sp.ls, err)
			}
			return meas{cycles: res.Cycles}, nil
		}
		m, err := rt.NewMemory(rt.Par, sp.slots)
		if err != nil {
			return meas{}, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:      sp.slots,
			LoadStoreUnits:   sp.ls,
			StandbyStations:  sp.standby,
			RotationInterval: cfg.RotationInterval,
			PrivateICache:    cfg.PrivateICache,
		}, rt.Par.Text, m)
		if err != nil {
			return meas{}, fmt.Errorf("table 2 (%d slots, %d ls, standby=%v): %w", sp.slots, sp.ls, sp.standby, err)
		}
		return meas{cycles: res.Cycles, busiest: res.BusiestUnit()}, nil
	})
	if err != nil {
		return nil, err
	}
	out.BaselineCycle[1] = results[0].cycles
	out.BaselineCycle[2] = results[1].cycles
	for i, sp := range specs[2:] {
		r := results[i+2]
		out.Cells = append(out.Cells, Table2Cell{
			Slots:          sp.slots,
			LoadStoreUnits: sp.ls,
			Standby:        sp.standby,
			Cycles:         r.cycles,
			Speedup:        float64(out.BaselineCycle[sp.ls]) / float64(r.cycles),
			BusiestClass:   r.busiest.Class,
			BusiestUtil:    r.busiest.Utilization(r.cycles),
		})
	}
	return out, nil
}

// Table3Config parameterises the hybrid superscalar × multithreading study
// (paper §3.3, Table 3): (D,S)-processors with D·S instruction issue slots
// and eight functional units.
type Table3Config struct {
	Workload RayTraceConfig
	// Products lists the D·S budgets to sweep (paper: 2, 4, 8).
	Products []int
}

func (c Table3Config) withDefaults() Table3Config {
	if len(c.Products) == 0 {
		c.Products = []int{2, 4, 8}
	}
	return c
}

// Table3Cell is one (D,S) measurement.
type Table3Cell struct {
	IssueWidth int // D
	Slots      int // S
	Cycles     uint64
	Speedup    float64
}

// Table3 is the full reproduction of Table 3.
type Table3 struct {
	Config        Table3Config
	BaselineCycle uint64
	Cells         []Table3Cell
}

// Cell returns the (D,S) measurement.
func (t *Table3) Cell(d, s int) (Table3Cell, bool) {
	for _, c := range t.Cells {
		if c.IssueWidth == d && c.Slots == s {
			return c, true
		}
	}
	return Table3Cell{}, false
}

// RunTable3 reproduces Table 3. All processors use two load/store units
// (eight functional units) and standby stations; the baseline is the
// sequential RISC machine with the same unit complement.
func RunTable3(cfg Table3Config) (*Table3, error) {
	cfg = cfg.withDefaults()
	rt, err := BuildRayTrace(cfg.Workload)
	if err != nil {
		return nil, err
	}
	out := &Table3{Config: cfg}

	// Cell 0 is the sequential baseline; the rest sweep the (D,S) grid.
	type spec struct{ d, s int }
	specs := []spec{{0, 0}}
	for _, prod := range cfg.Products {
		for d := 1; d <= prod; d *= 2 {
			specs = append(specs, spec{d: d, s: prod / d})
		}
	}
	cycles, err := runCells(len(specs), func(i int) (uint64, error) {
		sp := specs[i]
		if i == 0 {
			m, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(risc.Config{LoadStoreUnits: 2}, rt.Seq.Text, m)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		m, err := rt.NewMemory(rt.Par, sp.s)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     sp.s,
			LoadStoreUnits:  2,
			StandbyStations: true,
			IssueWidth:      sp.d,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("table 3 (D=%d, S=%d): %w", sp.d, sp.s, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	out.BaselineCycle = cycles[0]
	for i, sp := range specs[1:] {
		out.Cells = append(out.Cells, Table3Cell{
			IssueWidth: sp.d,
			Slots:      sp.s,
			Cycles:     cycles[i+1],
			Speedup:    float64(out.BaselineCycle) / float64(cycles[i+1]),
		})
	}
	return out, nil
}

// CurveCell is one point of the speed-up-versus-slots curve (Table 2's
// data as a dense sweep, suitable for plotting).
type CurveCell struct {
	Slots     int
	SpeedupL1 float64 // one load/store unit
	SpeedupL2 float64 // two load/store units
}

// RunSpeedupCurve sweeps thread slots 1..maxSlots with standby stations on.
func RunSpeedupCurve(w RayTraceConfig, maxSlots int) ([]CurveCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	// Cells 0..1 are the two baselines; then (slots, ls) pairs in curve order.
	type spec struct {
		baseline  bool
		slots, ls int
	}
	specs := []spec{{baseline: true, ls: 1}, {baseline: true, ls: 2}}
	for s := 1; s <= maxSlots; s++ {
		for _, ls := range []int{1, 2} {
			specs = append(specs, spec{slots: s, ls: ls})
		}
	}
	cycles, err := runCells(len(specs), func(i int) (uint64, error) {
		sp := specs[i]
		if sp.baseline {
			m, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			res, err := RunRISC(risc.Config{LoadStoreUnits: sp.ls}, rt.Seq.Text, m)
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		}
		m, err := rt.NewMemory(rt.Par, sp.slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     sp.slots,
			LoadStoreUnits:  sp.ls,
			StandbyStations: true,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("curve (%d slots, %d ls): %w", sp.slots, sp.ls, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var base [3]uint64
	base[1], base[2] = cycles[0], cycles[1]
	var out []CurveCell
	for i := 2; i < len(specs); i += 2 {
		out = append(out, CurveCell{
			Slots:     specs[i].slots,
			SpeedupL1: float64(base[1]) / float64(cycles[i]),
			SpeedupL2: float64(base[2]) / float64(cycles[i+1]),
		})
	}
	return out, nil
}
