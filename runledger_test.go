package hirata

// Integration tests of the cross-run ledger against real simulations: the
// determinism guard (ISSUE 10 satellite 1) and the diff acceptance
// criterion (two recorded 8-slot ray-trace runs under different configs
// must diff with per-bucket deltas summing exactly to the slot-cycle
// delta, and re-recording must reproduce each content hash byte for byte).

import (
	"bytes"
	"testing"

	"hirata/internal/runledger"
)

// rayTraceRecord runs the small ray-trace workload on cfg with a ledger
// attached and returns the appended record's entry.
func rayTraceRecord(t *testing.T, led *RunLedger, tag string, cfg MTConfig) RunLedgerEntry {
	t.Helper()
	rt, err := BuildRayTrace(RayTraceConfig{Spheres: 4, Rays: 24})
	if err != nil {
		t.Fatal(err)
	}
	eff := cfg.Effective()
	m, err := rt.NewMemory(rt.Par, eff.ThreadSlots)
	if err != nil {
		t.Fatal(err)
	}
	before := led.Stats()
	SetRunLedger(led, tag)
	defer SetRunLedger(nil, "")
	if _, err := RunMT(cfg, rt.Par.Text, m); err != nil {
		t.Fatal(err)
	}
	if err := RunLedgerError(); err != nil {
		t.Fatal(err)
	}
	if got := led.Stats(); got.Appends != before.Appends+1 {
		t.Fatal("run was not recorded")
	}
	// On a dedup append the store does not grow; the matching record is the
	// one most recently stored (true for every use in these tests).
	entries := led.Entries()
	return entries[len(entries)-1]
}

// TestRunRecordDeterminism: recording the same (program, config, workload)
// twice must produce byte-identical canonical records — equal content
// hashes — on the event core AND the legacy scan core, and all four
// records must share one run key. This is the cache-correctness
// certificate ROADMAP item 1's result cache rests on.
func TestRunRecordDeterminism(t *testing.T) {
	led := NewRunLedger()
	base := MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}

	event1 := rayTraceRecord(t, led, "det", base)
	// Identical rerun: the ledger dedups it, proving byte identity.
	stats := led.Stats()
	rayTraceRecord(t, led, "det", base)
	if got := led.Stats(); got.Records != stats.Records || got.DedupHits != stats.DedupHits+1 {
		t.Fatalf("identical rerun did not dedup: before %+v, after %+v", stats, got)
	}

	legacy := base
	legacy.DisableEventCore = true
	legacy1 := rayTraceRecord(t, led, "det", legacy)

	if event1.Hash != legacy1.Hash {
		t.Errorf("event and legacy cores produced different records: %s vs %s",
			runledger.ShortKey(event1.Hash), runledger.ShortKey(legacy1.Hash))
	}
	if event1.Record.Key != legacy1.Record.Key {
		t.Errorf("event and legacy cores produced different run keys")
	}
	ca, err := event1.Record.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := legacy1.Record.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Error("canonical record bytes differ across cycle cores")
	}
}

// TestRunDiffAcceptance is the ISSUE acceptance criterion: record the
// 8-slot ray trace under two configurations (1 vs 2 load/store units,
// standby stations), diff them, and require the per-bucket CPI-stack
// deltas to sum exactly to the slot-cycle delta. Then re-record both runs
// and require identical content hashes.
func TestRunDiffAcceptance(t *testing.T) {
	led := NewRunLedger()
	cfgA := MTConfig{ThreadSlots: 8, LoadStoreUnits: 1, StandbyStations: true}
	cfgB := MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	a := rayTraceRecord(t, led, "ls1", cfgA)
	b := rayTraceRecord(t, led, "ls2", cfgB)

	if a.Record.Result.Cycles == b.Record.Result.Cycles {
		t.Fatalf("configs produced equal cycle counts (%d); the diff would be vacuous", a.Record.Result.Cycles)
	}
	d, err := DiffRuns(a.Record, b.Record)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, bk := range d.Buckets {
		sum += bk.Delta
	}
	want := 8*int64(b.Record.Result.Cycles) - 8*int64(a.Record.Result.Cycles)
	if sum != want || d.SlotCycleDelta != want {
		t.Fatalf("bucket deltas sum to %d, SlotCycleDelta = %d, want %d", sum, d.SlotCycleDelta, want)
	}
	if d.CycleDelta != int64(b.Record.Result.Cycles)-int64(a.Record.Result.Cycles) {
		t.Fatalf("CycleDelta = %d", d.CycleDelta)
	}
	// The only changed canonical field is the load/store unit count.
	if len(d.Config) != 1 || d.Config[0].Name != "LoadStoreUnits" {
		t.Fatalf("config delta = %+v, want exactly LoadStoreUnits", d.Config)
	}

	// Re-record both runs into a fresh ledger: content hashes reproduce.
	led2 := NewRunLedger()
	if got := rayTraceRecord(t, led2, "ls1", cfgA); got.Hash != a.Hash {
		t.Errorf("re-recording run A produced %s, want %s", runledger.ShortKey(got.Hash), runledger.ShortKey(a.Hash))
	}
	if got := rayTraceRecord(t, led2, "ls2", cfgB); got.Hash != b.Hash {
		t.Errorf("re-recording run B produced %s, want %s", runledger.ShortKey(got.Hash), runledger.ShortKey(b.Hash))
	}
}

// TestRunRecordObservedModes: the observed and host-profiled run paths
// record too, sharing the plain run's key; the observed record carries the
// exact CPI stack and every slot row still sums to the run's cycles.
func TestRunRecordObservedModes(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Spheres: 4, Rays: 24})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MTConfig{ThreadSlots: 4, StandbyStations: true}
	led := NewRunLedger()

	plain := rayTraceRecord(t, led, "modes", cfg)

	m, err := rt.NewMemory(rt.Par, 4)
	if err != nil {
		t.Fatal(err)
	}
	SetRunLedger(led, "modes")
	defer SetRunLedger(nil, "")
	c := NewCollector(cfg, CollectorOptions{})
	res, err := RunMTObserved(cfg, rt.Par.Text, m, []Observer{c})
	if err != nil {
		t.Fatal(err)
	}
	entries := led.Entries()
	observed := entries[len(entries)-1]
	if observed.Record.Key != plain.Record.Key {
		t.Error("observed run keyed differently from the plain run")
	}
	if observed.Hash == plain.Hash {
		t.Error("observed record deduped against the plain record despite the exact CPI section")
	}
	if observed.Record.ExactCPI == nil {
		t.Fatal("observed record lacks the exact CPI stack")
	}
	for s, row := range observed.Record.ExactCPI.Slots {
		var sum int64
		for _, v := range row {
			sum += v
		}
		if sum != int64(res.Cycles) {
			t.Errorf("exact CPI slot %d sums to %d, want %d", s, sum, res.Cycles)
		}
	}

	// Host-profiled runs attach the profile artifact digest.
	m2, err := rt.NewMemory(rt.Par, 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewHostProfiler(HostProfilerOptions{})
	if _, err := RunMTHostProfiled(cfg, rt.Par.Text, m2, prof); err != nil {
		t.Fatal(err)
	}
	entries = led.Entries()
	profiled := entries[len(entries)-1]
	if profiled.Record.Key != plain.Record.Key {
		t.Error("profiled run keyed differently from the plain run")
	}
	if profiled.Record.HostProfileDigest == "" {
		t.Error("profiled record lacks the host-profile digest")
	}

	// Every record agrees on the simulated outcome regardless of mode.
	for _, e := range []RunLedgerEntry{plain, observed, profiled} {
		if e.Record.Result.Cycles != res.Cycles {
			t.Errorf("record %s reports %d cycles, want %d",
				runledger.ShortKey(e.Hash), e.Record.Result.Cycles, res.Cycles)
		}
	}
}
