package main

import (
	"strings"
	"testing"
)

const configFieldBadFixture = `package p

import "hirata/internal/core"

// bad: composite literal copying fields one by one from another Config.
func clone(c core.Config) core.Config {
	return core.Config{
		ThreadSlots:     c.ThreadSlots,
		IssueWidth:      c.IssueWidth,
		LoadStoreUnits:  c.LoadStoreUnits,
		StandbyStations: c.StandbyStations,
	}
}

// bad: a run of consecutive single-field assignments builds a Config.
func build(slots, width int) core.Config {
	var cfg core.Config
	cfg.ThreadSlots = slots
	cfg.IssueWidth = width
	cfg.LoadStoreUnits = 2
	cfg.ExtraUnits[1] = 1
	return cfg
}
`

const configFieldGoodFixture = `package p

import "hirata/internal/core"

// good: whole-value copy with overrides keeps future fields.
func vary(base core.Config, slots int) core.Config {
	cfg := base
	cfg.ThreadSlots = slots
	cfg.IssueWidth = 2
	return cfg
}

// good: literal seeded from scratch with a couple of fields is normal
// test/experiment setup, not a copy of another Config.
func fresh() core.Config {
	return core.Config{ThreadSlots: 4, IssueWidth: 2, LoadStoreUnits: 2, StandbyStations: true}
}

// good: interleaved non-Config statements break the run.
func interleaved(slots int) core.Config {
	var cfg core.Config
	cfg.ThreadSlots = slots
	n := slots * 2
	cfg.IssueWidth = 2
	_ = n
	cfg.LoadStoreUnits = 1
	return cfg
}
`

func TestConfigFieldFindings(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/tools/analyzers/fixture", configFieldBadFixture)
	fs := checkConfigField(fset, "hirata/tools/analyzers/fixture", files, info)
	if len(fs) != 2 {
		t.Fatalf("configfield findings = %d, want 2:\n%s", len(fs), strings.Join(fs, "\n"))
	}
	joined := strings.Join(fs, "\n")
	if !strings.Contains(joined, "composite literal copies 4 core.Config fields") {
		t.Errorf("no copy-rule finding:\n%s", joined)
	}
	if !strings.Contains(joined, "4 consecutive assignments construct core.Config") {
		t.Errorf("no assign-run finding:\n%s", joined)
	}
}

func TestConfigFieldClean(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/tools/analyzers/fixture", configFieldGoodFixture)
	if fs := checkConfigField(fset, "hirata/tools/analyzers/fixture", files, info); len(fs) != 0 {
		t.Errorf("configfield on clean fixture:\n%s", strings.Join(fs, "\n"))
	}
}

// internal/model enumerates Config axes on purpose — its Grid is the
// documented place to extend when Config grows, so it is exempt.
func TestConfigFieldExemptsModel(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/model", configFieldBadFixture)
	if fs := checkConfigField(fset, "hirata/internal/model", files, info); len(fs) != 0 {
		t.Errorf("configfield inside internal/model: %v", fs)
	}
}
