package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"
	"testing"
)

// typecheckSrc parses and type-checks one synthesized file as package
// pkgPath, resolving this module's imports through the source importer.
func typecheckSrc(t *testing.T, pkgPath, src string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	if _, err := conf.Check(pkgPath, fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, info
}

const badFixture = `package p

import (
	"hirata/internal/core"
	"hirata/internal/isa"
)

func f(r core.Result, p *core.Result, a, b isa.Instruction) bool {
	r.Cycles = 0          // statsmutate
	r.Slots[0].Issued++   // statsmutate, through an index expression
	p.Forks += 1          // statsmutate, through a pointer
	_ = a != b            // instcompare
	return a == b         // instcompare
}
`

const goodFixture = `package p

import (
	"hirata/internal/core"
	"hirata/internal/isa"
)

func f(r core.Result, a, b isa.Instruction) (uint64, bool) {
	c := r.Cycles          // reading stats is fine
	local := core.Result{} // composite literals are construction, not mutation
	_ = local
	return c, a.Same(b)
}
`

func TestBadFixtureFindings(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/tools/analyzers/fixture", badFixture)

	inst := checkInstCompare(fset, "hirata/tools/analyzers/fixture", files, info)
	if len(inst) != 2 {
		t.Errorf("instcompare findings = %d, want 2: %v", len(inst), inst)
	}
	for _, f := range inst {
		if !strings.Contains(f, "Instruction.Same") {
			t.Errorf("instcompare finding does not suggest Same: %s", f)
		}
	}

	stats := checkStatsMutate(fset, "hirata/tools/analyzers/fixture", files, info)
	if len(stats) != 3 {
		t.Errorf("statsmutate findings = %d, want 3: %v", len(stats), stats)
	}
	wantFields := []string{"Result.Cycles", "SlotStat.Issued", "Result.Forks"}
	for _, want := range wantFields {
		found := false
		for _, f := range stats {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no statsmutate finding for %s in %v", want, stats)
		}
	}
}

func TestGoodFixtureClean(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/tools/analyzers/fixture", goodFixture)
	if fs := checkInstCompare(fset, "hirata/tools/analyzers/fixture", files, info); len(fs) != 0 {
		t.Errorf("instcompare on clean fixture: %v", fs)
	}
	if fs := checkStatsMutate(fset, "hirata/tools/analyzers/fixture", files, info); len(fs) != 0 {
		t.Errorf("statsmutate on clean fixture: %v", fs)
	}
}

// TestExemptPackages checks that the owning packages may keep using raw
// equality and direct mutation.
func TestExemptPackages(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/core", badFixture)
	if fs := checkStatsMutate(fset, "hirata/internal/core", files, info); len(fs) != 0 {
		t.Errorf("statsmutate inside internal/core: %v", fs)
	}
	fset, files, info = typecheckSrc(t, "hirata/internal/isa", badFixture)
	if fs := checkInstCompare(fset, "hirata/internal/isa", files, info); len(fs) != 0 {
		t.Errorf("instcompare inside internal/isa: %v", fs)
	}
}

const shareCopyFixture = `package p

import "sync"

type Totals struct {
	Issues   uint64
	UnitBusy []uint64
	Stalls   [][]uint64
}

type Collector struct {
	mu      sync.Mutex
	totals  Totals
	pending Totals
	sink    Totals
}

// bad: returns a shallow copy while holding the lock.
func (c *Collector) Snapshot() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// bad: reassigns one slice field but leaves Stalls aliased.
func (c *Collector) snapshotLocked() Totals {
	t := c.totals
	t.UnitBusy = append([]uint64(nil), c.totals.UnitBusy...)
	return t
}

// bad: copied straight into another shared field, nothing reassignable.
func (c *Collector) mirrorLocked() {
	c.sink = c.totals
}

// good: deep-copies every slice field (the totalsLocked pattern).
func (c *Collector) deepLocked() Totals {
	t := c.totals
	t.UnitBusy = append([]uint64(nil), c.totals.UnitBusy...)
	t.Stalls = make([][]uint64, len(c.totals.Stalls))
	return t
}

// good: ownership transfer — the shared slot itself is replaced.
func (c *Collector) rotateLocked() Totals {
	t := c.pending
	c.pending = Totals{UnitBusy: make([]uint64, 8)}
	return t
}

// good: no lock boundary in sight.
type Plain struct{ v Totals }

func free(p *Plain) Totals { return p.v }
`

func TestShareCopyFindings(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/tools/analyzers/fixture", shareCopyFixture)
	fs := checkShareCopy(fset, "hirata/tools/analyzers/fixture", files, info)
	if len(fs) != 3 {
		t.Fatalf("sharecopy findings = %d, want 3:\n%s", len(fs), strings.Join(fs, "\n"))
	}
	joined := strings.Join(fs, "\n")
	// The full-copy sites report both slice fields; the partial deep copy
	// reports only the one still aliased.
	if !strings.Contains(joined, "Stalls, UnitBusy") {
		t.Errorf("no finding listing both slice fields:\n%s", joined)
	}
	partial := false
	for _, f := range fs {
		if strings.Contains(f, "Stalls") && !strings.Contains(f, "UnitBusy") {
			partial = true
		}
	}
	if !partial {
		t.Errorf("no finding for the partially deep-copied snapshotLocked:\n%s", joined)
	}
}

const diagFixture = `package lint

type Code string

const (
	CodeOne   Code = "L001"
	CodeTwo   Code = "L002"
	CodeThree Code = "L003"
)
`

const docFixture = "# catalogue\n" +
	"### L001 `one` — first\n" +
	"### L002 `two` — second\n" +
	"### L099 `ghost` — removed long ago\n" +
	"#### L003 not a section heading (wrong level)\n"

func TestDiagDocCrossReference(t *testing.T) {
	findings, err := diagdocCheck("diag.go", []byte(diagFixture), "LINT.md", docFixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2: %v", len(findings), findings)
	}
	joined := strings.Join(findings, "\n")
	if !strings.Contains(joined, "code L003 has no") {
		t.Errorf("missing undocumented-code finding for L003:\n%s", joined)
	}
	if !strings.Contains(joined, "section for L099 has no") {
		t.Errorf("missing stale-section finding for L099:\n%s", joined)
	}
}

func TestDiagDocClean(t *testing.T) {
	doc := "### L001 a\n### L002 b\n### L003 c\n"
	findings, err := diagdocCheck("diag.go", []byte(diagFixture), "LINT.md", doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean fixture produced findings: %v", findings)
	}
}

func TestDiagDocLiveCatalogue(t *testing.T) {
	// The real pair must stay in sync; run the check over the repository's
	// own files.
	diagSrc, err := os.ReadFile("../../internal/lint/diag.go")
	if err != nil {
		t.Fatal(err)
	}
	docSrc, err := os.ReadFile("../../docs/LINT.md")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := diagdocCheck("internal/lint/diag.go", diagSrc, "docs/LINT.md", string(docSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("live catalogue out of sync:\n%s", strings.Join(findings, "\n"))
	}
}
