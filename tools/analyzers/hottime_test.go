package main

import (
	"strings"
	"testing"
)

const hotTimeBadFixture = `package core

import "time"

// bad: raw wall-clock reads on the hot path.
func step() time.Duration {
	t0 := time.Now()
	tick := time.Tick(time.Second)
	_ = tick
	return time.Since(t0)
}

// bad: a reasonless annotation does not exempt.
func bare() time.Time {
	return time.Now() // hottime:allow
}
`

const hotTimeGoodFixture = `package core

import "time"

// good: duration arithmetic and constants never read the clock.
const slow = 5 * time.Second

func scale(d time.Duration) time.Duration {
	return d * 2 / time.Millisecond
}

// good: a justified exemption on the same line.
func banner() time.Time {
	return time.Now() // hottime:allow one-time startup banner
}

// good: a justified exemption on the preceding line.
func coldPath() time.Time {
	// hottime:allow cold start, runs once per process
	return time.Now()
}
`

func TestHotTimeFindings(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/core", hotTimeBadFixture)
	fs := checkHotTime(fset, "hirata/internal/core", files, info)
	if len(fs) != 4 {
		t.Fatalf("hottime findings = %d, want 4:\n%s", len(fs), strings.Join(fs, "\n"))
	}
	joined := strings.Join(fs, "\n")
	for _, want := range []string{"time.Now", "time.Since", "time.Tick"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no %s finding:\n%s", want, joined)
		}
	}
}

func TestHotTimeClean(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/core", hotTimeGoodFixture)
	if fs := checkHotTime(fset, "hirata/internal/core", files, info); len(fs) != 0 {
		t.Errorf("hottime on clean fixture:\n%s", strings.Join(fs, "\n"))
	}
}

// The event-driven core's helpers are inside the analyzer's scope: code
// shaped like event.go's wheel/heap maintenance is flagged like any other
// internal/core file, with no per-file allowlist to keep current.
const hotTimeEventCoreFixture = `package core

import "time"

type proc struct {
	evNear uint64
	evFar  []uint64
	cycle  uint64
}

// bad: timing the event-set maintenance from inside the hot loop.
func (p *proc) pushEv(when uint64) time.Duration {
	t0 := time.Now()
	if d := when - p.cycle; d <= 64 {
		p.evNear |= 1 << (d - 1)
	} else {
		p.evFar = append(p.evFar, when)
	}
	return time.Since(t0)
}

// good: a justified exemption still works in event-core code.
func (p *proc) deadlockBanner() time.Time {
	// hottime:allow deadlock diagnostic, at most once per run
	return time.Now()
}
`

func TestHotTimeCoversEventCore(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/core", hotTimeEventCoreFixture)
	fs := checkHotTime(fset, "hirata/internal/core", files, info)
	if len(fs) != 2 {
		t.Fatalf("hottime findings on event-core fixture = %d, want 2:\n%s", len(fs), strings.Join(fs, "\n"))
	}
	joined := strings.Join(fs, "\n")
	for _, want := range []string{"time.Now", "time.Since"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no %s finding:\n%s", want, joined)
		}
	}
}

// Only internal/core is the hot path; the same calls anywhere else are the
// host-observability layer doing its job.
func TestHotTimeScopedToCore(t *testing.T) {
	fset, files, info := typecheckSrc(t, "hirata/internal/hostobs", hotTimeBadFixture)
	if fs := checkHotTime(fset, "hirata/internal/hostobs", files, info); len(fs) != 0 {
		t.Errorf("hottime outside internal/core: %v", fs)
	}
}
