// Command analyzers runs this repository's custom static checks over the
// module's Go source. It deliberately uses only the standard library
// (go/parser + go/types with the source importer) so it works in this
// repository's hermetic build environment, where golang.org/x/tools — and
// with it `go vet -vettool` — is unavailable.
//
// Checks:
//
//   - statsmutate: simulation statistics (fields of core.Result, core.UnitStat,
//     core.SlotStat) may only be mutated inside internal/core. Everyone else
//     treats results as read-only values; a stray `res.Cycles = 0` in an
//     experiment silently corrupts a paper table.
//
//   - instcompare: isa.Instruction values must not be compared with == or !=
//     outside package isa. The struct carries format-dependent operand
//     fields, so raw equality distinguishes encodings that are semantically
//     identical; use Instruction.Same instead.
//
//   - sharecopy: a shallow copy of a slice-bearing struct taken from
//     pointer-reached shared state inside a lock boundary must deep-copy
//     (reassign) every slice field before the value escapes — otherwise the
//     copy aliases the guarded backing arrays and readers race with the
//     writers once the lock is released.
//
//   - configfield: core.Config must not be constructed or copied
//     field-by-field (a composite literal copying several fields from one
//     source Config, or a run of consecutive single-field assignments).
//     Config grows regularly; enumerating its fields compiles clean when a
//     field is added and silently drops it. internal/model's design-space
//     Grid is the one exempt explicit enumeration.
//
//   - hottime: internal/core must not call time.Now / time.Since (or any
//     other wall-clock or timer entry point) directly. The cycle loop is
//     the simulator's hot path; host-side timing goes through the
//     internal/hostobs sampled probe. `// hottime:allow <reason>` exempts
//     a deliberate call.
//
//   - diagdoc: every lint diagnostic code declared in internal/lint/diag.go
//     must have a `### Lxxx` section in docs/LINT.md, and every such
//     section must correspond to a declared code. The catalogue promises
//     code stability; an undocumented code (or stale docs for a removed
//     one) breaks that contract silently.
//
//   - configcanon: every core.Config field must be mentioned in
//     internal/core/canonical.go — encoded in canonicalFields or excluded
//     with a reason in canonicalExcluded. The canonical encoding is the run
//     ledger's cache key; a field added without a decision there would
//     silently alias two different machines under one run key.
//
// Usage (from the module root):
//
//	go run ./tools/analyzers ./...
//
// Exit status: 0 clean, 1 findings, 2 load/typecheck failure.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const modulePath = "hirata"

func main() {
	// Arguments other than the conventional "./..." are taken as directory
	// roots to restrict the walk.
	roots := []string{"."}
	if args := os.Args[1:]; len(args) > 0 && !(len(args) == 1 && args[0] == "./...") {
		roots = args
	}

	dirs, err := goPackageDirs(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyzers:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	var findings []string
	failed := false
	for _, dir := range dirs {
		for _, unit := range parseUnits(fset, dir, &failed) {
			findings = append(findings, checkUnit(fset, dir, unit)...)
		}
	}
	findings = append(findings, checkDiagDoc("internal/lint/diag.go", "docs/LINT.md", &failed)...)
	findings = append(findings, checkConfigCanon("internal/core/config.go", "internal/core/canonical.go", &failed)...)
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	switch {
	case failed:
		os.Exit(2)
	case len(findings) > 0:
		os.Exit(1)
	}
}

// unit is one type-checkable set of files: a package, or the external
// _test package that accompanies it.
type unit struct {
	name  string
	files []*ast.File
}

// goPackageDirs walks the roots and returns every directory containing Go
// files, skipping testdata and hidden directories.
func goPackageDirs(roots []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				base := filepath.Base(path)
				if base == "testdata" || (strings.HasPrefix(base, ".") && path != ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				dir := filepath.Dir(path)
				if !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseUnits parses a directory's Go files and groups them into type-check
// units (the package plus, separately, its external test package).
func parseUnits(fset *token.FileSet, dir string, failed *bool) []unit {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyzers:", err)
		*failed = true
		return nil
	}
	byName := map[string][]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyzers:", err)
			*failed = true
			continue
		}
		name := f.Name.Name
		byName[name] = append(byName[name], f)
	}
	var units []unit
	for name, files := range byName {
		units = append(units, unit{name: name, files: files})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	return units
}

// checkUnit type-checks one unit and runs both analyses over it.
func checkUnit(fset *token.FileSet, dir string, u unit) []string {
	pkgPath := modulePath
	if dir != "." {
		pkgPath = modulePath + "/" + filepath.ToSlash(dir)
	}
	if strings.HasSuffix(u.name, "_test") {
		pkgPath += "_test"
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		// Unresolved identifiers in one file must not hide findings in
		// another, so type errors are tolerated.
		Error: func(error) {},
	}
	_, _ = conf.Check(pkgPath, fset, u.files, info)

	var findings []string
	findings = append(findings, checkInstCompare(fset, pkgPath, u.files, info)...)
	findings = append(findings, checkStatsMutate(fset, pkgPath, u.files, info)...)
	findings = append(findings, checkShareCopy(fset, pkgPath, u.files, info)...)
	findings = append(findings, checkConfigField(fset, pkgPath, u.files, info)...)
	findings = append(findings, checkHotTime(fset, pkgPath, u.files, info)...)
	return findings
}

// isNamedType reports whether t (or the type it points to) is the named
// type pkg.name.
func isNamedType(t types.Type, pkg, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// checkInstCompare flags == / != between isa.Instruction values outside
// package isa.
func checkInstCompare(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []string {
	const isaPkg = modulePath + "/internal/isa"
	if pkgPath == isaPkg {
		return nil
	}
	var findings []string
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, e := range []ast.Expr{be.X, be.Y} {
				tv, ok := info.Types[e]
				if !ok {
					continue
				}
				if isNamedType(tv.Type, isaPkg, "Instruction") {
					findings = append(findings, fmt.Sprintf(
						"%s: instcompare: %s on isa.Instruction compares format-dependent operand fields; use Instruction.Same",
						fset.Position(be.OpPos), be.Op))
					break
				}
			}
			return true
		})
	}
	return findings
}

// statsTypes are the core statistics structs whose fields only
// internal/core may assign to.
var statsTypes = map[string]bool{"Result": true, "UnitStat": true, "SlotStat": true}

// checkStatsMutate flags writes (assignment or ++/--) to fields of the
// core statistics types outside internal/core.
func checkStatsMutate(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []string {
	const corePkg = modulePath + "/internal/core"
	if pkgPath == corePkg {
		return nil
	}
	var findings []string
	flag := func(e ast.Expr) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		recv := s.Recv()
		for name := range statsTypes {
			if isNamedType(recv, corePkg, name) {
				findings = append(findings, fmt.Sprintf(
					"%s: statsmutate: write to core.%s.%s outside internal/core; simulation statistics are read-only results",
					fset.Position(sel.Sel.Pos()), name, sel.Sel.Name))
				return
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					flag(lhs)
				}
			case *ast.IncDecStmt:
				flag(st.X)
			case *ast.UnaryExpr:
				// Taking the address of a stats field is mutation intent
				// the assignment scan cannot see through; it is allowed
				// (reading via pointer is fine), so nothing to do here.
			}
			return true
		})
	}
	return findings
}

// checkDiagDoc runs the diagdoc cross-reference when both the diagnostic
// source and the catalogue exist under the working directory (they do when
// the tool runs from the module root; restricted-root runs skip it).
func checkDiagDoc(diagPath, docPath string, failed *bool) []string {
	diagSrc, errDiag := os.ReadFile(diagPath)
	docSrc, errDoc := os.ReadFile(docPath)
	if os.IsNotExist(errDiag) && os.IsNotExist(errDoc) {
		return nil
	}
	if errDiag != nil || errDoc != nil {
		// One of the pair exists but the other is unreadable or missing:
		// that is itself a finding, not a skip.
		*failed = true
		fmt.Fprintf(os.Stderr, "analyzers: diagdoc: %v / %v\n", errDiag, errDoc)
		return nil
	}
	fs, err := diagdocCheck(diagPath, diagSrc, docPath, string(docSrc))
	if err != nil {
		*failed = true
		fmt.Fprintln(os.Stderr, "analyzers: diagdoc:", err)
	}
	return fs
}

// diagdocCheck cross-references the Code constants declared in the
// diagnostic source against the `### Lxxx` sections of the catalogue, in
// both directions. It is pure so tests can drive it with fixtures.
func diagdocCheck(diagPath string, diagSrc []byte, docPath, docText string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, diagPath, diagSrc, 0)
	if err != nil {
		return nil, err
	}
	declared := map[string]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "Code" {
			return true
		}
		for _, v := range vs.Values {
			bl, ok := v.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				continue
			}
			s := strings.Trim(bl.Value, "`\"")
			if isDiagCode(s) {
				declared[s] = bl.Pos()
			}
		}
		return true
	})

	documented := map[string]int{}
	for i, line := range strings.Split(docText, "\n") {
		rest, ok := strings.CutPrefix(line, "### ")
		if !ok {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 && isDiagCode(fields[0]) {
			documented[fields[0]] = i + 1
		}
	}

	var findings []string
	for code, pos := range declared {
		if _, ok := documented[code]; !ok {
			findings = append(findings, fmt.Sprintf("%s: diagdoc: code %s has no `### %s` section in %s",
				fset.Position(pos), code, code, docPath))
		}
	}
	for code, line := range documented {
		if _, ok := declared[code]; !ok {
			findings = append(findings, fmt.Sprintf("%s:%d: diagdoc: section for %s has no Code constant in %s",
				docPath, line, code, diagPath))
		}
	}
	return findings, nil
}

// isDiagCode reports whether s looks like a diagnostic code: "L" followed
// by exactly three digits.
func isDiagCode(s string) bool {
	if len(s) != 4 || s[0] != 'L' {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
