package main

// hottime: forbids raw wall-clock calls (time.Now, time.Since, time.After,
// time.Tick, time.NewTicker, time.NewTimer) inside internal/core. The cycle
// loop executes hundreds of thousands of times per simulated run; an
// unsampled time.Now on that path costs more than the work it measures and
// skews every published ns/op number. All host-side timing belongs in
// internal/hostobs, whose sampled probe touches the clock on one step in
// SampleEvery and keeps the disabled path allocation- and syscall-free.
//
// Scope: the whole internal/core package, by import path — every file, and
// every file added later, is covered without this analyzer naming them.
// That matters most for the event-driven core's helpers (event.go's
// pushEv/drainEv, the dirty-set maintenance, the head-stall cache, the
// quiescent horizons of skip.go): they run inside or instead of the phase
// bodies, so a clock read there is costlier than anywhere else — the
// event core made stepped cycles cheap enough that one stray time.Now per
// cycle would dominate them. On hosts with slow clock sources a single
// read costs tens of nanoseconds, which is why even the sampled probe
// defaults to one timed step in 128 (hostobs.DefaultSampleEvery).
//
// A deliberate exception carries a justification comment on the same line
// or the line above:
//
//	t0 := time.Now() // hottime:allow cold-start banner, runs once
//
// Test files are exempt: timing assertions in _test.go files are the
// mechanism that keeps the budget honest.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotTimeFuncs are the time package entry points that read the wall clock
// or arm timers; anything cheaper (time.Duration arithmetic, constants) is
// fine on the hot path.
var hotTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// checkHotTime runs the hottime analysis over one package unit.
func checkHotTime(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []string {
	const corePkg = modulePath + "/internal/core"
	if pkgPath != corePkg {
		return nil
	}
	var findings []string
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		allowed := hottimeAllowLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !hotTimeFuncs[sel.Sel.Name] {
				return true
			}
			// Resolve the receiver to the time package (not a local
			// variable that happens to be named "time").
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := info.Uses[id]
			if !ok {
				return true
			}
			pkgName, ok := obj.(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pos := fset.Position(call.Pos())
			if allowed[pos.Line] {
				return true
			}
			findings = append(findings, fmt.Sprintf(
				"%s: hottime: time.%s on the simulator hot path; route host timing through the internal/hostobs sampled probe, or annotate `// hottime:allow <reason>`",
				pos, sel.Sel.Name))
			return true
		})
	}
	return findings
}

// hottimeAllowLines collects the lines a `// hottime:allow <reason>`
// comment exempts: the comment's own line and the line below it (so the
// annotation can trail the call or precede it). A bare "hottime:allow"
// without a reason does not count — the justification is the point.
func hottimeAllowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			rest, ok := strings.CutPrefix(text, "hottime:allow")
			if !ok || strings.TrimSpace(rest) == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			allowed[line] = true
			allowed[line+1] = true
		}
	}
	return allowed
}
