package main

// sharecopy: a shallow copy of a slice-bearing struct taken from shared
// state inside a lock boundary aliases the slice backing arrays. Once the
// copy escapes the critical section, readers race with the writers that
// mutate the shared original — the exact bug class behind the Totals
// metrics race fixed in the observability layer: `t := c.totals` copies
// the struct header but shares every slice, so the copy must reassign
// (deep-copy) each slice field before it leaves the lock.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkShareCopy flags shallow copies of slice-bearing structs made from
// pointer-reached shared state inside a lock boundary, when at least one
// slice field is never reassigned before the copy can escape. A function
// is a lock boundary when it locks a sync.Mutex/RWMutex itself or is a
// method of a type carrying one (the "fooLocked" helper convention, where
// the caller holds the lock).
func checkShareCopy(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []string {
	var findings []string
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !locksMutex(fn.Body, info) && !receiverHasMutex(fn, info) {
				continue
			}
			findings = append(findings, shareCopiesIn(fset, fn, info)...)
		}
	}
	return findings
}

// locksMutex reports whether the body calls Lock or RLock on a sync mutex.
func locksMutex(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if s, ok := info.Selections[sel]; ok {
			if isNamedType(s.Recv(), "sync", "Mutex") || isNamedType(s.Recv(), "sync", "RWMutex") {
				found = true
			}
		}
		return !found
	})
	return found
}

// receiverHasMutex reports whether fn is a method whose receiver struct
// directly carries a sync.Mutex or sync.RWMutex field — the convention
// under which unexported "fooLocked" helpers run with the lock held.
func receiverHasMutex(fn *ast.FuncDecl, info *types.Info) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	st, ok := derefStruct(tv.Type)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isNamedType(ft, "sync", "Mutex") || isNamedType(ft, "sync", "RWMutex") {
			return true
		}
	}
	return false
}

// derefStruct unwraps pointers and names down to a struct type.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// sliceFields returns the names of a struct's directly slice-typed fields.
func sliceFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := st.Field(i).Type().Underlying().(*types.Slice); ok {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

// shareCopiesIn scans one lock-boundary function for struct copies whose
// slice fields stay aliased to the shared original.
func shareCopiesIn(fset *token.FileSet, fn *ast.FuncDecl, info *types.Info) []string {
	// Pass 1: every `t.F = ...` reassignment of a slice field, keyed by
	// the copy variable's object. Order within the function is not
	// tracked: reassigning anywhere before the copy could escape is what
	// the totalsLocked pattern does, and a reassignment after an escape
	// would be flagged by vet-style ordering analyses, not this one.
	reassigned := map[types.Object]map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if reassigned[obj] == nil {
				reassigned[obj] = map[string]bool{}
			}
			reassigned[obj][sel.Sel.Name] = true
		}
		return true
	})

	flag := func(pos token.Pos, typeName string, missing []string) string {
		sort.Strings(missing)
		return fmt.Sprintf(
			"%s: sharecopy: shallow copy of %s aliases slice field(s) %s with the lock-guarded original; deep-copy them before the value escapes",
			fset.Position(pos), typeName, strings.Join(missing, ", "))
	}

	var findings []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				name, fields, ok := sharedSliceStructCopy(rhs, info)
				if !ok {
					continue
				}
				if sourceReassigned(rhs, reassigned, info) {
					// Ownership transfer: the shared field itself is
					// replaced in this function (c.interval = fresh after
					// s := c.interval), so the copy keeps the old backing
					// arrays exclusively.
					continue
				}
				id, isIdent := st.Lhs[i].(*ast.Ident)
				if !isIdent {
					// Copying straight into another field or index keeps
					// no chance to fix the aliasing up afterwards.
					findings = append(findings, flag(rhs.Pos(), name, fields))
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				var missing []string
				for _, f := range fields {
					if obj == nil || !reassigned[obj][f] {
						missing = append(missing, f)
					}
				}
				if len(missing) > 0 {
					findings = append(findings, flag(rhs.Pos(), name, missing))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if name, fields, ok := sharedSliceStructCopy(res, info); ok {
					findings = append(findings, flag(res.Pos(), name, fields))
				}
			}
		}
		return true
	})
	return findings
}

// sourceReassigned reports whether the copied field itself (base.field of
// the source selector) is assigned somewhere in the same function — the
// ownership-transfer idiom, where the shared slot is replaced with a fresh
// value and the copy keeps the old backing arrays exclusively.
func sourceReassigned(e ast.Expr, reassigned map[types.Object]map[string]bool, info *types.Info) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && reassigned[obj][sel.Sel.Name]
}

// sharedSliceStructCopy reports whether e is a by-value read of a
// slice-bearing struct field reached through a pointer (shared state). It
// returns the struct type name and its slice field names.
func sharedSliceStructCopy(e ast.Expr, info *types.Info) (string, []string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || !s.Indirect() {
		return "", nil, false
	}
	tv, ok := info.Types[e]
	if !ok {
		return "", nil, false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return "", nil, false
	}
	fields := sliceFields(st)
	if len(fields) == 0 {
		return "", nil, false
	}
	return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() }), fields, true
}
