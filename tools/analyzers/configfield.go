package main

// configfield: flags code that constructs or copies core.Config
// field-by-field. Config grows regularly (the ExtraUnits /
// DisableCycleSkip pattern): code enumerating fields one by one compiles
// clean when a field is added and silently drops it — a sweep that copies
// ThreadSlots..QueueDepth by hand keeps running after ExtraUnits lands,
// with ExtraUnits zeroed. Two shapes are flagged:
//
//   - a core.Config composite literal where several element values read
//     fields off the same other Config value (a field-by-field copy:
//     `core.Config{ThreadSlots: c.ThreadSlots, IssueWidth: c.IssueWidth,
//     ...}`) — copy the whole value and override instead;
//   - a run of consecutive statements assigning distinct fields of the
//     same Config variable (field-by-field construction).
//
// internal/model is exempt: its design-space Grid is the one legitimate
// explicit field enumeration (the axes must name the fields they sweep),
// and it is documented as the place to extend when Config grows.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

const (
	// configCopyMin is the number of fields copied from one source Config
	// into a composite literal before it counts as a field-by-field copy.
	configCopyMin = 3
	// configAssignRunMin is the number of consecutive single-field
	// assignments to one Config variable before the run counts as
	// field-by-field construction.
	configAssignRunMin = 4
)

// checkConfigField runs the configfield analysis over one package unit.
func checkConfigField(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []string {
	const (
		corePkg  = modulePath + "/internal/core"
		modelPkg = modulePath + "/internal/model"
	)
	if pkgPath == modelPkg || pkgPath == modelPkg+"_test" {
		return nil
	}
	isConfig := func(t types.Type) bool { return isNamedType(t, corePkg, "Config") }

	var findings []string
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok || !isConfig(tv.Type) {
					return true
				}
				// Count keyed elements whose value is a field selector off
				// some other Config-typed expression, grouped by source.
				bySource := map[string]int{}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					sel, ok := kv.Value.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					tv, ok := info.Types[sel.X]
					if !ok || !isConfig(tv.Type) {
						continue
					}
					bySource[exprKey(sel.X)]++
				}
				for src, count := range bySource {
					if count >= configCopyMin {
						findings = append(findings, fmt.Sprintf(
							"%s: configfield: composite literal copies %d core.Config fields from %q one by one; a newly added Config field would be dropped silently — copy the value and override",
							fset.Position(n.Lbrace), count, src))
					}
				}
			case *ast.BlockStmt:
				findings = append(findings, configAssignRuns(fset, n.List, info, isConfig)...)
			case *ast.CaseClause:
				findings = append(findings, configAssignRuns(fset, n.Body, info, isConfig)...)
			case *ast.CommClause:
				findings = append(findings, configAssignRuns(fset, n.Body, info, isConfig)...)
			}
			return true
		})
	}
	return findings
}

// configAssignRuns scans one statement list for runs of consecutive
// assignments to distinct fields of the same core.Config variable.
func configAssignRuns(fset *token.FileSet, stmts []ast.Stmt, info *types.Info, isConfig func(types.Type) bool) []string {
	var findings []string
	runBase := ""
	runFields := map[string]bool{}
	var runStart token.Pos
	flush := func() {
		if runBase != "" && len(runFields) >= configAssignRunMin {
			findings = append(findings, fmt.Sprintf(
				"%s: configfield: %d consecutive assignments construct core.Config %q field by field; a newly added Config field would be dropped silently",
				fset.Position(runStart), len(runFields), runBase))
		}
		runBase = ""
		runFields = map[string]bool{}
	}
	for _, st := range stmts {
		base, field, ok := configFieldWrite(st, info, isConfig)
		if !ok {
			flush()
			continue
		}
		if base != runBase {
			flush()
			runBase = base
			runStart = st.Pos()
		}
		runFields[field] = true
	}
	flush()
	return findings
}

// configFieldWrite reports whether st is a plain assignment to a single
// field (possibly through an index expression) of a core.Config-typed
// expression, returning the base expression key and the field name.
func configFieldWrite(st ast.Stmt, info *types.Info, isConfig func(types.Type) bool) (base, field string, ok bool) {
	as, isAssign := st.(*ast.AssignStmt)
	if !isAssign || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
		return "", "", false
	}
	lhs := as.Lhs[0]
	// cfg.ExtraUnits[i] = v writes the ExtraUnits field element-wise.
	if ix, isIndex := lhs.(*ast.IndexExpr); isIndex {
		lhs = ix.X
	}
	sel, isSel := lhs.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found || !isConfig(tv.Type) {
		return "", "", false
	}
	return exprKey(sel.X), sel.Sel.Name, true
}

// exprKey renders a (selector/index) expression chain as a stable string
// key: cfg, sp.cfg, g.Base, ...
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[]"
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	}
	return "?"
}
