package main

import (
	"os"
	"strings"
	"testing"
)

const configFixture = `package core

type Config struct {
	ThreadSlots int
	QueueDepth  int
	NewKnob     int
	MaxCycles   uint64
}
`

// canonFixture mentions ThreadSlots (identifier in a fields row), MaxCycles
// (canonicalExcluded key) and QueueDepth (string literal) — but not NewKnob
// — and excludes a field that no longer exists.
const canonFixture = `package core

var canonicalFields = []canonicalField{
	{"ThreadSlots", func(c Config) string { return intField(c.ThreadSlots) }},
	{"QueueDepth", func(c Config) string { return intField(c.QueueDepth) }},
}

var canonicalExcluded = map[string]string{
	"MaxCycles":  "abort limit only",
	"GoneField":  "this field was removed from Config",
}
`

func TestConfigCanonFindings(t *testing.T) {
	findings, err := configCanonCheck("config.go", []byte(configFixture), "canonical.go", []byte(canonFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2: %v", len(findings), findings)
	}
	joined := strings.Join(findings, "\n")
	if !strings.Contains(joined, "Config field NewKnob is not mentioned") {
		t.Errorf("missing unmentioned-field finding for NewKnob:\n%s", joined)
	}
	if !strings.Contains(joined, "canonicalExcluded names GoneField") {
		t.Errorf("missing stale-exclusion finding for GoneField:\n%s", joined)
	}
}

func TestConfigCanonClean(t *testing.T) {
	canon := `package core

var canonicalFields = []canonicalField{
	{"ThreadSlots", func(c Config) string { return intField(c.ThreadSlots) }},
	{"QueueDepth", func(c Config) string { return intField(c.QueueDepth) }},
	{"NewKnob", func(c Config) string { return intField(c.NewKnob) }},
}

var canonicalExcluded = map[string]string{
	"MaxCycles": "abort limit only",
}
`
	findings, err := configCanonCheck("config.go", []byte(configFixture), "canonical.go", []byte(canon))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("clean fixture produced findings: %v", findings)
	}
}

func TestConfigCanonLivePair(t *testing.T) {
	// The real pair must stay in sync; run the check over the repository's
	// own files.
	configSrc, err := os.ReadFile("../../internal/core/config.go")
	if err != nil {
		t.Fatal(err)
	}
	canonSrc, err := os.ReadFile("../../internal/core/canonical.go")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := configCanonCheck("internal/core/config.go", configSrc, "internal/core/canonical.go", canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("live Config/canonical pair out of sync:\n%s", strings.Join(findings, "\n"))
	}
}
