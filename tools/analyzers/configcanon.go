package main

// configcanon: every field of core.Config must be *mentioned* in
// internal/core/canonical.go — either encoded (a canonicalFields row names
// it) or deliberately excluded (a canonicalExcluded entry). The canonical
// encoding is the run ledger's cache key: a Config field added without a
// decision here would silently alias two different machines under one run
// key. The reflection test in internal/core enforces encoded-xor-excluded
// at test time; this check makes a plain *omission* a vet-time error, and
// also flags stale mentions of fields that no longer exist.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// checkConfigCanon runs the cross-reference when both files exist under the
// working directory (they do when the tool runs from the module root;
// restricted-root runs skip it).
func checkConfigCanon(configPath, canonPath string, failed *bool) []string {
	configSrc, errConfig := os.ReadFile(configPath)
	canonSrc, errCanon := os.ReadFile(canonPath)
	if os.IsNotExist(errConfig) && os.IsNotExist(errCanon) {
		return nil
	}
	if errConfig != nil || errCanon != nil {
		*failed = true
		fmt.Fprintf(os.Stderr, "analyzers: configcanon: %v / %v\n", errConfig, errCanon)
		return nil
	}
	fs, err := configCanonCheck(configPath, configSrc, canonPath, canonSrc)
	if err != nil {
		*failed = true
		fmt.Fprintln(os.Stderr, "analyzers: configcanon:", err)
	}
	return fs
}

// configCanonCheck cross-references the Config struct's field names against
// the identifiers and string literals of the canonical encoder, in both
// directions. It is pure so tests can drive it with fixtures.
func configCanonCheck(configPath string, configSrc []byte, canonPath string, canonSrc []byte) ([]string, error) {
	fset := token.NewFileSet()
	cf, err := parser.ParseFile(fset, configPath, configSrc, 0)
	if err != nil {
		return nil, err
	}
	fields := map[string]token.Pos{}
	ast.Inspect(cf, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Config" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				if name.IsExported() {
					fields[name.Name] = name.Pos()
				}
			}
		}
		return false
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("%s declares no Config struct fields", configPath)
	}

	kf, err := parser.ParseFile(fset, canonPath, canonSrc, 0)
	if err != nil {
		return nil, err
	}
	// A mention is a bare identifier, a selector (c.ThreadSlots), or a field
	// name inside a string literal ("ThreadSlots", "name=value" lines in
	// canonicalExcluded keys, doc strings quoting the field).
	mentions := map[string]bool{}
	ast.Inspect(kf, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			mentions[v.Name] = true
		case *ast.BasicLit:
			if v.Kind == token.STRING {
				s := strings.Trim(v.Value, "`\"")
				for name := range fields {
					if strings.Contains(s, name) {
						mentions[name] = true
					}
				}
			}
		}
		return true
	})

	var findings []string
	for name, pos := range fields {
		if !mentions[name] {
			findings = append(findings, fmt.Sprintf(
				"%s: configcanon: Config field %s is not mentioned in %s — add it to canonicalFields or canonicalExcluded (the run ledger's cache key must decide every field)",
				fset.Position(pos), name, canonPath))
		}
	}
	// Reverse direction: a canonicalExcluded key naming a field that no
	// longer exists is a stale exclusion.
	for name, pos := range staleExcludedKeys(kf, fields) {
		findings = append(findings, fmt.Sprintf(
			"%s: configcanon: canonicalExcluded names %s, which is not a Config field in %s",
			fset.Position(pos), name, configPath))
	}
	return findings, nil
}

// staleExcludedKeys returns canonicalExcluded map keys that do not name a
// current Config field.
func staleExcludedKeys(f *ast.File, fields map[string]token.Pos) map[string]token.Pos {
	stale := map[string]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range vs.Names {
			if name.Name != "canonicalExcluded" || i >= len(vs.Values) {
				continue
			}
			cl, ok := vs.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				bl, ok := kv.Key.(*ast.BasicLit)
				if !ok || bl.Kind != token.STRING {
					continue
				}
				key := strings.Trim(bl.Value, "`\"")
				if _, live := fields[key]; !live {
					stale[key] = bl.Pos()
				}
			}
		}
		return true
	})
	return stale
}
