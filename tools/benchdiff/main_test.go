package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hirata/internal/runledger"
)

const benchOut = `goos: linux
BenchmarkSimulatorThroughput-8   45   25130702 ns/op   738211 sim-cycles/s
BenchmarkSimulatorThroughput-8   44   25830702 ns/op   718211 sim-cycles/s
BenchmarkRunNoObserver-8        534    2128625 ns/op   338480 B/op   4638 allocs/op
BenchmarkRunNoObserver-8        534    2098625 ns/op   338480 B/op   4638 allocs/op
PASS
`

func TestParseBestOfN(t *testing.T) {
	m, err := parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NsPerOp["BenchmarkSimulatorThroughput"]; got != 25130702 {
		t.Errorf("ns/op best = %v; want min 25130702", got)
	}
	if got := m.NsPerOp["BenchmarkRunNoObserver"]; got != 2098625 {
		t.Errorf("ns/op best = %v; want min 2098625", got)
	}
	if got := m.CyPerSec["BenchmarkSimulatorThroughput"]; got != 738211 {
		t.Errorf("sim-cycles/s best = %v; want max 738211", got)
	}
	if _, ok := m.CyPerSec["BenchmarkRunNoObserver"]; ok {
		t.Error("sim-cycles/s recorded for a benchmark that does not report it")
	}
}

func TestHistoryRegressionGate(t *testing.T) {
	mk := func(cyc float64, gover string) historyRow {
		return historyRow{
			GoVersion: gover, OS: "linux", Arch: "amd64", CPUs: 1, Revision: "abc1234",
			SimCyclesPerSec: map[string]float64{"BenchmarkSimulatorThroughput": cyc},
		}
	}
	cases := []struct {
		name  string
		rows  []historyRow
		fails int
	}{
		{"single row", []historyRow{mk(500000, "go1.24.0")}, 0},
		{"steady", []historyRow{mk(500000, "go1.24.0"), mk(495000, "go1.24.0")}, 0},
		{"improved", []historyRow{mk(500000, "go1.24.0"), mk(1500000, "go1.24.0")}, 0},
		{"within tolerance", []historyRow{mk(500000, "go1.24.0"), mk(460000, "go1.24.0")}, 0},
		{"regressed", []historyRow{mk(500000, "go1.24.0"), mk(440000, "go1.24.0")}, 1},
		{"different host class", []historyRow{mk(500000, "go1.23.0"), mk(100000, "go1.24.0")}, 0},
		{"skips other class to comparable row", []historyRow{
			mk(500000, "go1.24.0"), mk(900000, "go1.23.0"), mk(440000, "go1.24.0")}, 1},
		{"metric absent in previous row", []historyRow{
			{GoVersion: "go1.24.0", OS: "linux", Arch: "amd64", CPUs: 1},
			mk(440000, "go1.24.0")}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := checkHistoryRegression(tc.rows, 0.10)
			if len(fails) != tc.fails {
				t.Errorf("failures = %d, want %d: %v", len(fails), tc.fails, fails)
			}
			for _, f := range fails {
				if !strings.Contains(f, "sim-cycles/s") || !strings.Contains(f, "drop") {
					t.Errorf("failure message lacks context: %q", f)
				}
			}
		})
	}
}

func TestHistoryRoundTripAndTrend(t *testing.T) {
	m, err := parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	phases := filepath.Join(t.TempDir(), "selfprofile.json")
	if err := os.WriteFile(phases, []byte(`{"phase_profile":{"steps":42},"opportunity":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hist := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	for i := 0; i < 2; i++ {
		row, err := appendHistory(hist, m, phases)
		if err != nil {
			t.Fatal(err)
		}
		if row.Revision == "" || row.GoVersion == "" || row.CPUs == 0 {
			t.Fatalf("row missing host metadata: %+v", row)
		}
		if !strings.Contains(string(row.PhaseProfile), `"steps":42`) {
			t.Fatalf("phase profile not embedded: %s", row.PhaseProfile)
		}
	}
	rows, err := readHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("history holds %d rows; want 2", len(rows))
	}
	if rows[1].Benchmarks["BenchmarkSimulatorThroughput"] != 25130702 {
		t.Errorf("row benchmarks = %v", rows[1].Benchmarks)
	}

	var buf bytes.Buffer
	writeTrend(&buf, rows)
	out := buf.String()
	for _, want := range []string{"BenchmarkSimulatorThroughput", "sim-cycles/s", "+0.0%", "2 run(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
}

func TestGateSummaryOutputs(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkSteady": 1000,
		"BenchmarkSlower": 2400,
		"BenchmarkNew":    500,
	}
	baseline := map[string]float64{
		"BenchmarkSteady": 1010,
		"BenchmarkSlower": 2000,
	}
	s := runGate(measured, baseline, 1.10)
	if s.Passed {
		t.Error("gate passed despite a 20% regression")
	}
	byName := map[string]gateRow{}
	for _, r := range s.Benchmarks {
		byName[r.Name] = r
	}
	if byName["BenchmarkSteady"].Status != "ok" ||
		byName["BenchmarkSlower"].Status != "FAIL" ||
		byName["BenchmarkNew"].Status != "new" {
		t.Errorf("verdicts = %+v", s.Benchmarks)
	}
	if d := byName["BenchmarkSlower"].RelDelta; d < 0.19 || d > 0.21 {
		t.Errorf("RelDelta = %v, want ~0.20", d)
	}

	var md strings.Builder
	s.writeMarkdown(&md)
	for _, want := range []string{"### Benchmark gate: FAIL", "| BenchmarkSlower | FAIL |", "| BenchmarkNew | new |", "+20.0%"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown summary missing %q:\n%s", want, md.String())
		}
	}

	path := filepath.Join(t.TempDir(), "summary.json")
	if err := s.writeJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back gateSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Passed || len(back.Benchmarks) != 3 || back.Tolerance != 1.10 {
		t.Errorf("round-tripped summary = %+v", back)
	}

	if ok := runGate(map[string]float64{"BenchmarkSteady": 1000}, baseline, 1.10); !ok.Passed {
		t.Error("steady benchmark failed the gate")
	}
}

func TestLedgerTrend(t *testing.T) {
	led := runledger.NewMemory()
	for i, cycles := range []uint64{1000, 1000, 1500} {
		rec := &runledger.RunRecord{Tag: "ray8"}
		rec.Revision = "rev" + string(rune('a'+i))
		rec.Key = "k"
		rec.Result.Cycles = cycles
		rec.Result.Instructions = 2 * cycles
		if _, _, err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	writeLedgerTrend(&buf, led.Entries())
	out := buf.String()
	for _, want := range []string{"ray8", "+50.0%", "+0.0%", "1 lineage(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger trend missing %q:\n%s", want, out)
		}
	}
}
