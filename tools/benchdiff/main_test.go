package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
BenchmarkSimulatorThroughput-8   45   25130702 ns/op   738211 sim-cycles/s
BenchmarkSimulatorThroughput-8   44   25830702 ns/op   718211 sim-cycles/s
BenchmarkRunNoObserver-8        534    2128625 ns/op   338480 B/op   4638 allocs/op
BenchmarkRunNoObserver-8        534    2098625 ns/op   338480 B/op   4638 allocs/op
PASS
`

func TestParseBestOfN(t *testing.T) {
	m, err := parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NsPerOp["BenchmarkSimulatorThroughput"]; got != 25130702 {
		t.Errorf("ns/op best = %v; want min 25130702", got)
	}
	if got := m.NsPerOp["BenchmarkRunNoObserver"]; got != 2098625 {
		t.Errorf("ns/op best = %v; want min 2098625", got)
	}
	if got := m.CyPerSec["BenchmarkSimulatorThroughput"]; got != 738211 {
		t.Errorf("sim-cycles/s best = %v; want max 738211", got)
	}
	if _, ok := m.CyPerSec["BenchmarkRunNoObserver"]; ok {
		t.Error("sim-cycles/s recorded for a benchmark that does not report it")
	}
}

func TestHistoryRegressionGate(t *testing.T) {
	mk := func(cyc float64, gover string) historyRow {
		return historyRow{
			GoVersion: gover, OS: "linux", Arch: "amd64", CPUs: 1, Revision: "abc1234",
			SimCyclesPerSec: map[string]float64{"BenchmarkSimulatorThroughput": cyc},
		}
	}
	cases := []struct {
		name  string
		rows  []historyRow
		fails int
	}{
		{"single row", []historyRow{mk(500000, "go1.24.0")}, 0},
		{"steady", []historyRow{mk(500000, "go1.24.0"), mk(495000, "go1.24.0")}, 0},
		{"improved", []historyRow{mk(500000, "go1.24.0"), mk(1500000, "go1.24.0")}, 0},
		{"within tolerance", []historyRow{mk(500000, "go1.24.0"), mk(460000, "go1.24.0")}, 0},
		{"regressed", []historyRow{mk(500000, "go1.24.0"), mk(440000, "go1.24.0")}, 1},
		{"different host class", []historyRow{mk(500000, "go1.23.0"), mk(100000, "go1.24.0")}, 0},
		{"skips other class to comparable row", []historyRow{
			mk(500000, "go1.24.0"), mk(900000, "go1.23.0"), mk(440000, "go1.24.0")}, 1},
		{"metric absent in previous row", []historyRow{
			{GoVersion: "go1.24.0", OS: "linux", Arch: "amd64", CPUs: 1},
			mk(440000, "go1.24.0")}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := checkHistoryRegression(tc.rows, 0.10)
			if len(fails) != tc.fails {
				t.Errorf("failures = %d, want %d: %v", len(fails), tc.fails, fails)
			}
			for _, f := range fails {
				if !strings.Contains(f, "sim-cycles/s") || !strings.Contains(f, "drop") {
					t.Errorf("failure message lacks context: %q", f)
				}
			}
		})
	}
}

func TestHistoryRoundTripAndTrend(t *testing.T) {
	m, err := parse(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	phases := filepath.Join(t.TempDir(), "selfprofile.json")
	if err := os.WriteFile(phases, []byte(`{"phase_profile":{"steps":42},"opportunity":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hist := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	for i := 0; i < 2; i++ {
		row, err := appendHistory(hist, m, phases)
		if err != nil {
			t.Fatal(err)
		}
		if row.Revision == "" || row.GoVersion == "" || row.CPUs == 0 {
			t.Fatalf("row missing host metadata: %+v", row)
		}
		if !strings.Contains(string(row.PhaseProfile), `"steps":42`) {
			t.Fatalf("phase profile not embedded: %s", row.PhaseProfile)
		}
	}
	rows, err := readHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("history holds %d rows; want 2", len(rows))
	}
	if rows[1].Benchmarks["BenchmarkSimulatorThroughput"] != 25130702 {
		t.Errorf("row benchmarks = %v", rows[1].Benchmarks)
	}

	var buf bytes.Buffer
	writeTrend(&buf, rows)
	out := buf.String()
	for _, want := range []string{"BenchmarkSimulatorThroughput", "sim-cycles/s", "+0.0%", "2 run(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("trend output missing %q:\n%s", want, out)
		}
	}
}
