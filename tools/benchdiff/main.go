// Command benchdiff gates simulator performance in CI. It parses `go test
// -bench` output, reduces each benchmark to its best (minimum) ns/op across
// -count repetitions, and compares that against the committed baseline in
// BENCH_sweep.json, failing when any benchmark regresses past the
// tolerance. The best-of-N reduction makes the gate robust to scheduler
// noise on shared runners; only a consistent slowdown across every
// repetition can trip it.
//
// Usage:
//
//	go test -run xxx -bench . -count 5 . | go run ./tools/benchdiff -baseline BENCH_sweep.json
//	go run ./tools/benchdiff -baseline BENCH_sweep.json -in bench-out.txt -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkRunNoObserver-8   534   2128625 ns/op   338480 B/op   4638 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parse reduces bench output to the minimum ns/op per benchmark name, with
// the trailing -GOMAXPROCS suffix stripped so baselines are host-portable.
func parse(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark result lines found in input")
	}
	return best, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_sweep.json", "baseline JSON file (its \"benchmarks\" map holds ns/op per name)")
		inPath       = flag.String("in", "", "bench output file (default: stdin)")
		tolerance    = flag.Float64("tolerance", 1.10, "fail when measured ns/op exceeds baseline*tolerance")
		update       = flag.Bool("update", false, "rewrite the baseline's benchmarks map with the measured values")
		outPath      = flag.String("out", "", "also write the measured map as JSON here (CI artifact)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		js, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(js, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	// The baseline file may carry other fields (host notes, before/after
	// measurements); only the "benchmarks" map is read and rewritten.
	raw := make(map[string]json.RawMessage)
	if data, err := os.ReadFile(*baselinePath); err == nil {
		if err := json.Unmarshal(data, &raw); err != nil {
			fatal(fmt.Errorf("benchdiff: %s: %v", *baselinePath, err))
		}
	} else if !*update {
		fatal(err)
	}
	baseline := make(map[string]float64)
	if b, ok := raw["benchmarks"]; ok {
		if err := json.Unmarshal(b, &baseline); err != nil {
			fatal(fmt.Errorf("benchdiff: %s: benchmarks map: %v", *baselinePath, err))
		}
	}

	if *update {
		js, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw["benchmarks"] = js
		out, err := json.MarshalIndent(raw, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: updated %s with %d benchmarks\n", *baselinePath, len(measured))
		return
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		got := measured[name]
		want, ok := baseline[name]
		if !ok {
			fmt.Printf("  new  %-50s %12.0f ns/op (no baseline)\n", name, got)
			continue
		}
		ratio := got / want
		status := "ok"
		if ratio > *tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %-4s %-50s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			status, name, got, want, (ratio-1)*100)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: performance regression beyond %.0f%% tolerance\n", (*tolerance-1)*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
