// Command benchdiff gates simulator performance in CI. It parses `go test
// -bench` output, reduces each benchmark to its best (minimum) ns/op across
// -count repetitions, and compares that against the committed baseline in
// BENCH_sweep.json, failing when any benchmark regresses past the
// tolerance. The best-of-N reduction makes the gate robust to scheduler
// noise on shared runners; only a consistent slowdown across every
// repetition can trip it.
//
// Beyond the gate, benchdiff keeps a performance history: -history appends
// one JSON line per bench run (best ns/op, best sim-cycles/s, VCS revision,
// host metadata, optionally the cycle-loop phase breakdown from
// hirata-bench -self-profile-json) to BENCH_history.jsonl, and -trend
// prints the trajectory that file records. The history job owns one gate
// of its own that the baseline comparison cannot express: after appending,
// the last two rows from the same host class (go version, OS, arch, CPU
// count) are compared on sim-cycles/s, and a drop past -history-tolerance
// (default 10%) fails the run. ns/op regressions stay the baseline gate's
// job — the history gate watches the throughput metric the simulator
// itself reports, across consecutive recorded runs.
//
// Usage:
//
//	go test -run xxx -bench . -count 5 . | go run ./tools/benchdiff -baseline BENCH_sweep.json
//	go run ./tools/benchdiff -baseline BENCH_sweep.json -in bench-out.txt -update
//	go run ./tools/benchdiff -in bench-out.txt -history BENCH_history.jsonl -phases selfprofile.json
//	go run ./tools/benchdiff -trend -history BENCH_history.jsonl
//	go run ./tools/benchdiff -trend -ledger runs.ledger
//
// The gate writes machine-readable results alongside the console report:
// -summary-json emits the per-benchmark verdicts as JSON (a CI artifact),
// -summary-md a GitHub-flavored markdown table for $GITHUB_STEP_SUMMARY.
// With -trend, -ledger prints per-lineage simulated-cycle trajectories from
// a hirata-report run ledger instead of the host-side bench history.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hirata/internal/buildinfo"
	"hirata/internal/runledger"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkRunNoObserver-8   534   2128625 ns/op   338480 B/op   4638 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cycLine extracts the simulator-throughput metric benchmarks report via
// b.ReportMetric(..., "sim-cycles/s").
var cycLine = regexp.MustCompile(`([0-9.e+]+) sim-cycles/s`)

// measurement is the best-of-N reduction of one bench run: minimum ns/op
// (scheduler noise only ever adds time) and maximum sim-cycles/s per name.
type measurement struct {
	NsPerOp  map[string]float64
	CyPerSec map[string]float64
}

// parse reduces bench output to the best value per benchmark name, with
// the trailing -GOMAXPROCS suffix stripped so baselines are host-portable.
func parse(r io.Reader) (measurement, error) {
	best := measurement{NsPerOp: make(map[string]float64), CyPerSec: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return measurement{}, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		if cur, ok := best.NsPerOp[name]; !ok || ns < cur {
			best.NsPerOp[name] = ns
		}
		if c := cycLine.FindStringSubmatch(sc.Text()); c != nil {
			if cyc, err := strconv.ParseFloat(c[1], 64); err == nil {
				if cur, ok := best.CyPerSec[name]; !ok || cyc > cur {
					best.CyPerSec[name] = cyc
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return measurement{}, err
	}
	if len(best.NsPerOp) == 0 {
		return measurement{}, fmt.Errorf("benchdiff: no benchmark result lines found in input")
	}
	return best, nil
}

// historyRow is one line of BENCH_history.jsonl: a bench run pinned to a
// point in time, a revision, and a host.
type historyRow struct {
	Time            string             `json:"time"`
	Revision        string             `json:"revision"`
	Dirty           bool               `json:"dirty,omitempty"`
	GoVersion       string             `json:"go"`
	OS              string             `json:"os"`
	Arch            string             `json:"arch"`
	CPUs            int                `json:"cpus"`
	Benchmarks      map[string]float64 `json:"benchmarks"`
	SimCyclesPerSec map[string]float64 `json:"sim_cycles_per_s,omitempty"`
	PhaseProfile    json.RawMessage    `json:"phase_profile,omitempty"`
}

// appendHistory writes one history row to path (JSON Lines, append-only).
// phasesPath optionally names a hirata-bench -self-profile-json file whose
// phase_profile member is embedded in the row.
func appendHistory(path string, m measurement, phasesPath string) (historyRow, error) {
	bi := buildinfo.Get()
	row := historyRow{
		Time:            time.Now().UTC().Format(time.RFC3339),
		Revision:        bi.ShortRevision(),
		Dirty:           bi.Dirty,
		GoVersion:       bi.GoVersion,
		OS:              runtime.GOOS,
		Arch:            runtime.GOARCH,
		CPUs:            runtime.NumCPU(),
		Benchmarks:      m.NsPerOp,
		SimCyclesPerSec: m.CyPerSec,
	}
	if phasesPath != "" {
		data, err := os.ReadFile(phasesPath)
		if err != nil {
			return row, err
		}
		var doc struct {
			PhaseProfile json.RawMessage `json:"phase_profile"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return row, fmt.Errorf("benchdiff: %s: %v", phasesPath, err)
		}
		row.PhaseProfile = doc.PhaseProfile
	}
	js, err := json.Marshal(row)
	if err != nil {
		return row, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return row, err
	}
	if _, err := f.Write(append(js, '\n')); err != nil {
		f.Close()
		return row, err
	}
	return row, f.Close()
}

// readHistory parses a BENCH_history.jsonl file, skipping blank lines.
func readHistory(path string) ([]historyRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []historyRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row historyRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("benchdiff: %s: %v", path, err)
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

// sameHostClass reports whether two history rows are comparable: recorded
// by the same Go toolchain on the same OS/arch with the same CPU count.
// Revisions are deliberately *not* matched — comparing the newest revision
// against the previous one on the same host is the point of the gate.
func sameHostClass(a, b historyRow) bool {
	return a.GoVersion == b.GoVersion && a.OS == b.OS && a.Arch == b.Arch && a.CPUs == b.CPUs
}

// checkHistoryRegression compares the last appended row against the most
// recent earlier row of the same host class and returns one message per
// shared sim-cycles/s metric that dropped by more than tol (0.10 = 10%).
// Rows from other host classes are skipped, not compared: a container
// class change shows up as an incomparable row, never as a false failure.
func checkHistoryRegression(rows []historyRow, tol float64) []string {
	if len(rows) < 2 {
		return nil
	}
	last := rows[len(rows)-1]
	var prev *historyRow
	for i := len(rows) - 2; i >= 0; i-- {
		if sameHostClass(rows[i], last) {
			prev = &rows[i]
			break
		}
	}
	if prev == nil {
		return nil
	}
	var fails []string
	names := make([]string, 0, len(last.SimCyclesPerSec))
	for name := range last.SimCyclesPerSec {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got := last.SimCyclesPerSec[name]
		want, ok := prev.SimCyclesPerSec[name]
		if !ok || want <= 0 {
			continue
		}
		if got < want*(1-tol) {
			fails = append(fails, fmt.Sprintf(
				"%s: %.0f sim-cycles/s, was %.0f @ %s (%.1f%% drop, tolerance %.0f%%)",
				name, got, want, prev.Revision, (1-got/want)*100, tol*100))
		}
	}
	return fails
}

// writeTrend prints each benchmark's ns/op trajectory across the history,
// with the per-row delta against the previous appearance.
func writeTrend(w io.Writer, rows []historyRow) {
	names := map[string]bool{}
	for _, r := range rows {
		for n := range r.Benchmarks {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Fprintf(w, "bench history: %d run(s)\n", len(rows))
	for _, name := range sorted {
		fmt.Fprintf(w, "%s\n", name)
		prev := 0.0
		for _, r := range rows {
			ns, ok := r.Benchmarks[name]
			if !ok {
				continue
			}
			delta := "      —"
			if prev > 0 {
				delta = fmt.Sprintf("%+6.1f%%", (ns/prev-1)*100)
			}
			line := fmt.Sprintf("  %-20s %-13s %14.0f ns/op  %s", r.Time, r.Revision, ns, delta)
			if cyc, ok := r.SimCyclesPerSec[name]; ok {
				line += fmt.Sprintf("  %11.0f sim-cycles/s", cyc)
			}
			fmt.Fprintln(w, line)
			prev = ns
		}
	}
}

// gateRow is one benchmark's verdict in the baseline gate.
type gateRow struct {
	Name     string  `json:"name"`
	Status   string  `json:"status"` // ok, FAIL, new
	NsPerOp  float64 `json:"ns_per_op"`
	Baseline float64 `json:"baseline_ns_per_op,omitempty"`
	RelDelta float64 `json:"rel_delta,omitempty"` // (measured/baseline)-1; absent for new benchmarks
}

// gateSummary is the machine-readable result of one baseline-gate run,
// written by -summary-json and rendered by -summary-md for the CI step
// summary.
type gateSummary struct {
	Tolerance  float64   `json:"tolerance"`
	Passed     bool      `json:"passed"`
	Benchmarks []gateRow `json:"benchmarks"`
}

// runGate compares the measured ns/op map against the baseline and returns
// every benchmark's verdict, sorted by name.
func runGate(measured, baseline map[string]float64, tol float64) gateSummary {
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	s := gateSummary{Tolerance: tol, Passed: true}
	for _, name := range names {
		got := measured[name]
		want, ok := baseline[name]
		if !ok {
			s.Benchmarks = append(s.Benchmarks, gateRow{Name: name, Status: "new", NsPerOp: got})
			continue
		}
		row := gateRow{Name: name, Status: "ok", NsPerOp: got, Baseline: want, RelDelta: got/want - 1}
		if got/want > tol {
			row.Status = "FAIL"
			s.Passed = false
		}
		s.Benchmarks = append(s.Benchmarks, row)
	}
	return s
}

// writeText prints the human gate report (the classic console format).
func (s gateSummary) writeText(w io.Writer) {
	for _, r := range s.Benchmarks {
		if r.Status == "new" {
			fmt.Fprintf(w, "  new  %-50s %12.0f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		fmt.Fprintf(w, "  %-4s %-50s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			r.Status, r.Name, r.NsPerOp, r.Baseline, r.RelDelta*100)
	}
}

// writeMarkdown renders the gate as a GitHub-flavored markdown table for
// $GITHUB_STEP_SUMMARY.
func (s gateSummary) writeMarkdown(w io.Writer) {
	verdict := "PASS"
	if !s.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "### Benchmark gate: %s (tolerance %+.0f%%)\n\n", verdict, (s.Tolerance-1)*100)
	fmt.Fprintln(w, "| benchmark | status | ns/op | baseline | Δ |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|")
	for _, r := range s.Benchmarks {
		if r.Status == "new" {
			fmt.Fprintf(w, "| %s | new | %.0f | — | — |\n", r.Name, r.NsPerOp)
			continue
		}
		fmt.Fprintf(w, "| %s | %s | %.0f | %.0f | %+.1f%% |\n",
			r.Name, r.Status, r.NsPerOp, r.Baseline, r.RelDelta*100)
	}
}

// writeJSONFile writes the summary as an indented JSON document.
func (s gateSummary) writeJSONFile(path string) error {
	js, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(js, '\n'), 0o644)
}

// writeLedgerTrend prints each lineage's simulated-cycle trajectory from a
// content-addressed run ledger: the cross-run counterpart of the host-side
// bench history, keyed by what the simulator computed rather than how fast
// the host ran it.
func writeLedgerTrend(w io.Writer, entries []runledger.Entry) {
	lineage := func(e runledger.Entry) string {
		if e.Record.Tag != "" {
			return e.Record.Tag
		}
		return runledger.ShortKey(e.Record.Key)
	}
	var order []string
	byLine := map[string][]runledger.Entry{}
	for _, e := range entries {
		ln := lineage(e)
		if _, ok := byLine[ln]; !ok {
			order = append(order, ln)
		}
		byLine[ln] = append(byLine[ln], e)
	}
	fmt.Fprintf(w, "run ledger: %d record(s), %d lineage(s)\n", len(entries), len(order))
	for _, ln := range order {
		fmt.Fprintf(w, "%s\n", ln)
		prev := uint64(0)
		for _, e := range byLine[ln] {
			r := e.Record
			delta := "      —"
			if prev > 0 {
				delta = fmt.Sprintf("%+6.1f%%", (float64(r.Result.Cycles)/float64(prev)-1)*100)
			}
			fmt.Fprintf(w, "  %-13s %-13s %2d slots %12d cycles  %s  ipc %.3f\n",
				runledger.ShortKey(e.Hash), r.Revision, len(r.Result.Slots), r.Result.Cycles, delta, r.IPC())
			prev = r.Result.Cycles
		}
	}
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_sweep.json", "baseline JSON file (its \"benchmarks\" map holds ns/op per name)")
		inPath       = flag.String("in", "", "bench output file (default: stdin)")
		tolerance    = flag.Float64("tolerance", 1.10, "fail when measured ns/op exceeds baseline*tolerance")
		update       = flag.Bool("update", false, "rewrite the baseline's benchmarks map with the measured values")
		outPath      = flag.String("out", "", "also write the measured map as JSON here (CI artifact)")
		historyPath  = flag.String("history", "", "append this run to a JSONL history file (with -trend: the file to read)")
		phasesPath   = flag.String("phases", "", "with -history, embed the phase_profile from this hirata-bench -self-profile-json file")
		trend        = flag.Bool("trend", false, "print the per-benchmark trajectory recorded in -history (default BENCH_history.jsonl) and exit")
		historyTol   = flag.Float64("history-tolerance", 0.10, "with -history, fail when sim-cycles/s drops by more than this fraction vs the previous same-host-class row")
		ledgerPath   = flag.String("ledger", "", "with -trend, print per-lineage run trajectories from this hirata-report run ledger instead of the bench history")
		summaryJSON  = flag.String("summary-json", "", "write the gate's per-benchmark verdicts as JSON here (CI artifact)")
		summaryMD    = flag.String("summary-md", "", "write the gate's verdicts as a markdown table here (append to $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()

	if *trend && *ledgerPath != "" {
		led, err := runledger.Open(*ledgerPath)
		if err != nil {
			fatal(err)
		}
		if led.Len() == 0 {
			fatal(fmt.Errorf("benchdiff: %s holds no run records", *ledgerPath))
		}
		writeLedgerTrend(os.Stdout, led.Entries())
		return
	}
	if *trend {
		path := *historyPath
		if path == "" {
			path = "BENCH_history.jsonl"
		}
		rows, err := readHistory(path)
		if err != nil {
			fatal(err)
		}
		if len(rows) == 0 {
			fatal(fmt.Errorf("benchdiff: %s holds no history rows", path))
		}
		writeTrend(os.Stdout, rows)
		return
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		js, err := json.MarshalIndent(measured.NsPerOp, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(js, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *historyPath != "" {
		// Append first, gate second: the row is recorded even when the gate
		// trips, so the regression itself is in the history it was caught by.
		row, err := appendHistory(*historyPath, measured, *phasesPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: appended %d benchmark(s) @ %s to %s\n",
			len(row.Benchmarks), row.Revision, *historyPath)
		rows, err := readHistory(*historyPath)
		if err != nil {
			fatal(err)
		}
		if fails := checkHistoryRegression(rows, *historyTol); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "benchdiff: %s\n", f)
			}
			fmt.Fprintf(os.Stderr, "benchdiff: sim-cycles/s regression vs previous history row\n")
			os.Exit(1)
		}
		return
	}

	// The baseline file may carry other fields (host notes, before/after
	// measurements); only the "benchmarks" map is read and rewritten.
	raw := make(map[string]json.RawMessage)
	if data, err := os.ReadFile(*baselinePath); err == nil {
		if err := json.Unmarshal(data, &raw); err != nil {
			fatal(fmt.Errorf("benchdiff: %s: %v", *baselinePath, err))
		}
	} else if !*update {
		fatal(err)
	}
	baseline := make(map[string]float64)
	if b, ok := raw["benchmarks"]; ok {
		if err := json.Unmarshal(b, &baseline); err != nil {
			fatal(fmt.Errorf("benchdiff: %s: benchmarks map: %v", *baselinePath, err))
		}
	}

	if *update {
		js, err := json.MarshalIndent(measured.NsPerOp, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw["benchmarks"] = js
		out, err := json.MarshalIndent(raw, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: updated %s with %d benchmarks\n", *baselinePath, len(measured.NsPerOp))
		return
	}

	summary := runGate(measured.NsPerOp, baseline, *tolerance)
	summary.writeText(os.Stdout)
	if *summaryJSON != "" {
		if err := summary.writeJSONFile(*summaryJSON); err != nil {
			fatal(err)
		}
	}
	if *summaryMD != "" {
		var buf strings.Builder
		summary.writeMarkdown(&buf)
		if err := os.WriteFile(*summaryMD, []byte(buf.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if !summary.Passed {
		fmt.Fprintf(os.Stderr, "benchdiff: performance regression beyond %.0f%% tolerance\n", (*tolerance-1)*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
