package hirata_test

// This file is the differential half of the analytic performance model
// (internal/model, docs/MODEL.md): the calibrated model re-predicts the
// paper's Tables 2-5 and must land within the pinned error budget of the
// re-simulated cycle counts, never below the lint certificate; and the MinC
// fuzz corpus must flow through the characterizer without panics or
// non-finite output.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hirata"
)

// modelErrBudgetPct is the acceptance threshold on per-point cycle error.
// The measured maxima are well inside it (see docs/MODEL.md); the headroom
// absorbs workload-size jitter, not model regressions.
const modelErrBudgetPct = 15.0

// TestModelValidationTables re-simulates shrunken Tables 2-5 cells and
// checks every model prediction against its measured cycle count.
func TestModelValidationTables(t *testing.T) {
	v, err := hirata.ValidateModel(hirata.ModelValidationConfig{
		Rays: 48, Spheres: 6, LK1N: 50, ListNodes: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Points) == 0 {
		t.Fatal("validation produced no points")
	}
	if v.BoundViolations != 0 {
		t.Fatalf("%d predictions fell below their lint certificate", v.BoundViolations)
	}
	for _, p := range v.Points {
		t.Logf("%-7s %-28s predicted %8d simulated %8d err %+6.1f%%",
			p.Table, p.Label, p.Predicted, p.Simulated, p.ErrPct)
		if math.Abs(p.ErrPct) > modelErrBudgetPct {
			t.Errorf("%s %s: model error %.1f%% exceeds %.0f%% budget",
				p.Table, p.Label, p.ErrPct, modelErrBudgetPct)
		}
		if p.Predicted < uint64(p.Bound) {
			t.Errorf("%s %s: prediction %d below certificate %d",
				p.Table, p.Label, p.Predicted, p.Bound)
		}
	}
	for table, worst := range v.PerTable {
		t.Logf("%s: worst |err| %.1f%%", table, worst)
	}
	if v.MaxAbsErrPct > modelErrBudgetPct {
		t.Errorf("worst-case model error %.1f%% exceeds %.0f%% budget",
			v.MaxAbsErrPct, modelErrBudgetPct)
	}
}

// TestModelExploreEndToEnd runs the full -explore pipeline on a shrunken
// ray-trace workload: calibrate, search the analytic grid, re-simulate the
// Pareto frontier, and compare.
func TestModelExploreEndToEnd(t *testing.T) {
	rep, err := hirata.RunExplore(hirata.ExploreConfig{
		Workload: hirata.RayTraceConfig{Rays: 48, Spheres: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Searched < 1000 {
		t.Errorf("explored %d configs, want >= 1000", rep.Searched)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	if rep.BoundViolations != 0 {
		t.Fatalf("%d frontier predictions fell below their certificate", rep.BoundViolations)
	}
	for _, p := range rep.Frontier {
		if p.Simulated == 0 {
			t.Errorf("frontier point not re-simulated: %s", p.Describe())
		}
	}
	t.Logf("searched %d, frontier %d, max |err| %.1f%%",
		rep.Searched, len(rep.Frontier), rep.MaxAbsErrPct)
	if rep.MaxAbsErrPct > modelErrBudgetPct {
		t.Errorf("frontier model error %.1f%% exceeds %.0f%% budget",
			rep.MaxAbsErrPct, modelErrBudgetPct)
	}
}

// assertModelRobust runs the static-only predictor over one program on
// each bound-test machine shape: no panics, finite predictions, and never
// below the dependence bound or the combined certificate.
func assertModelRobust(t *testing.T, name string, text []hirata.Instruction) {
	t.Helper()
	w := hirata.NewModelWorkload(name, text)
	for _, cfg := range boundConfigs {
		cfg := cfg
		t.Run(fmt.Sprintf("%s/S%d", name, cfg.ThreadSlots), func(t *testing.T) {
			p := w.Predict(cfg)
			b := hirata.StaticBounds(cfg, text)
			if p.Unbounded != b.Unbounded {
				t.Fatalf("model unbounded=%v, certificate unbounded=%v", p.Unbounded, b.Unbounded)
			}
			if p.Unbounded {
				return
			}
			if math.IsNaN(p.Raw) || math.IsInf(p.Raw, 0) {
				t.Fatalf("non-finite prediction %v", p.Raw)
			}
			if p.Cycles < uint64(b.DepBound) {
				t.Fatalf("prediction %d below dependence bound %d", p.Cycles, b.DepBound)
			}
			if p.Cycles < uint64(b.Bound) {
				t.Fatalf("prediction %d below certificate %d", p.Cycles, b.Bound)
			}
		})
	}
}

// TestModelFuzzCorpus pushes every compiling fuzz-corpus program through
// the characterizer; the corpus also keeps crashers and rejects, which the
// compiler filters out here exactly as TestBoundFuzzCorpus does.
func TestModelFuzzCorpus(t *testing.T) {
	dir := filepath.Join("internal", "minc", "testdata", "fuzz", "FuzzCompile")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src, ok := corpusString(string(data))
		if !ok {
			continue
		}
		prog, err := hirata.CompileMinC(src)
		if err != nil {
			continue
		}
		assertModelRobust(t, e.Name(), prog.Text)
	}
}

// TestModelExamplePrograms does the same over every shipped example, which
// covers the characterizer on hand-written assembly (queue rings, forks,
// kills) the fuzz corpus cannot reach.
func TestModelExamplePrograms(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*"))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, file := range files {
		ext := filepath.Ext(file)
		if ext != ".s" && ext != ".mc" {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var prog *hirata.Program
		if ext == ".mc" {
			prog, err = hirata.CompileMinC(string(src))
		} else {
			prog, err = hirata.Assemble(string(src))
		}
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		checked++
		assertModelRobust(t, filepath.Base(file), prog.Text)
	}
	if checked == 0 {
		t.Fatal("no example programs found")
	}
}
