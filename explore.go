package hirata

import (
	"fmt"
	"sort"
	"strings"

	"hirata/internal/core"
	"hirata/internal/model"
	"hirata/internal/workload"
)

// Design-space exploration (hirata-bench -explore, docs/MODEL.md): the
// analytic model from internal/model searches thousands of (slots, units,
// standby, issue-width) configurations without simulating them, then only
// the Pareto-optimal cost/cycles frontier is re-simulated exactly to
// measure the model's error where it matters.

// Model-layer aliases, following the export pattern of the other
// subsystems (lint, obs).
type (
	// ModelWorkload is a characterized + calibrated program the analytic
	// model predicts from.
	ModelWorkload = model.Workload
	// ModelPrediction is one analytic prediction.
	ModelPrediction = model.Prediction
	// ModelGrid is a design-space enumeration.
	ModelGrid = model.Grid
	// ModelPoint is one explored design point (prediction + cost).
	ModelPoint = model.Point
	// StaticModelProfile is the static workload characterization.
	StaticModelProfile = model.StaticProfile
)

// NewModelWorkload characterizes a program text for the analytic model.
func NewModelWorkload(name string, text []Instruction, startPCs ...int64) *ModelWorkload {
	entries := make([]int, 0, len(startPCs))
	for _, pc := range startPCs {
		entries = append(entries, int(pc))
	}
	return model.NewWorkload(name, text, entries)
}

// ExploreConfig parameterises RunExplore.
type ExploreConfig struct {
	// Workload sizes the ray-trace program being explored.
	Workload RayTraceConfig
	// Grid is the enumeration to search; zero value means
	// model.DefaultGrid over the paper's base machine.
	Grid *ModelGrid
	// SkipFrontierSim skips the exact re-simulation of the frontier
	// (predictions only; Simulated/ErrPct stay zero).
	SkipFrontierSim bool
}

// ExplorePoint is a frontier point: the analytic prediction plus the
// exact re-simulation it is checked against.
type ExplorePoint struct {
	model.Point
	// Simulated is the exact cycle count of this configuration.
	Simulated uint64 `json:"simulated"`
	// ErrPct is the signed model error: 100·(predicted−simulated)/simulated.
	ErrPct float64 `json:"errPct"`
}

// ExploreReport is the full design-space exploration result.
type ExploreReport struct {
	Workload string `json:"workload"`
	// Searched is the number of configurations predicted analytically.
	Searched int `json:"searched"`
	// Anchors is the number of calibration simulations run.
	Anchors int `json:"anchors"`
	// Frontier is the Pareto-optimal set, cheapest first, re-simulated.
	Frontier []ExplorePoint `json:"frontier"`
	// MaxAbsErrPct is the worst |ErrPct| across the frontier.
	MaxAbsErrPct float64 `json:"maxAbsErrPct"`
	// BoundViolations counts predictions below their certified lower
	// bound — always zero (predictions are clamped); reported so the
	// differential guarantee is visible in the artifact.
	BoundViolations int `json:"boundViolations"`
}

// exploreAnchors is the calibration protocol: one low-contention run
// (pins the dependence and fetch-bubble rates), one high-contention run
// (pins the knee sharpness), and two single-slot wide-issue runs (pin the
// width scaling).
func exploreAnchors() []core.Config {
	return []core.Config{
		{ThreadSlots: 2, LoadStoreUnits: 2, StandbyStations: true},
		{ThreadSlots: 8, LoadStoreUnits: 1, StandbyStations: true},
		{ThreadSlots: 1, IssueWidth: 2, LoadStoreUnits: 2, StandbyStations: true},
		{ThreadSlots: 1, IssueWidth: 4, LoadStoreUnits: 2, StandbyStations: true},
	}
}

// RunExplore searches the configuration grid analytically, re-simulates
// the Pareto frontier exactly, and reports the model error against those
// exact runs.
func RunExplore(cfg ExploreConfig) (*ExploreReport, error) {
	rt, err := BuildRayTrace(cfg.Workload)
	if err != nil {
		return nil, err
	}
	runCfg := func(c core.Config) (core.Result, error) {
		m, err := rt.NewMemory(rt.Par, c.Effective().ThreadSlots)
		if err != nil {
			return core.Result{}, err
		}
		return RunMT(c, rt.Par.Text, m)
	}

	w := model.NewWorkload("raytrace", rt.Par.Text, nil)
	anchors := exploreAnchors()
	anchorRes, err := runCells(len(anchors), func(i int) (core.Result, error) {
		return runCfg(anchors[i])
	})
	if err != nil {
		return nil, fmt.Errorf("explore calibration: %w", err)
	}
	for i, a := range anchors {
		w.AddAnchor(a, anchorRes[i])
	}

	grid := model.DefaultGrid(core.Config{})
	if cfg.Grid != nil {
		grid = *cfg.Grid
	}
	points := w.Explore(grid)
	frontier := model.Pareto(points)

	rep := &ExploreReport{
		Workload: "raytrace",
		Searched: len(points),
		Anchors:  len(anchors),
	}
	for _, p := range points {
		if !p.Unbounded && int64(p.Cycles) < p.Bound {
			rep.BoundViolations++
		}
	}

	if cfg.SkipFrontierSim {
		for _, p := range frontier {
			rep.Frontier = append(rep.Frontier, ExplorePoint{Point: p})
		}
		return rep, nil
	}

	sims, err := runCells(len(frontier), func(i int) (uint64, error) {
		res, err := runCfg(frontier[i].Config)
		if err != nil {
			return 0, fmt.Errorf("explore frontier re-simulation %d: %w", i, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range frontier {
		ep := ExplorePoint{Point: p, Simulated: sims[i]}
		if ep.Simulated > 0 {
			ep.ErrPct = 100 * (float64(p.Cycles) - float64(ep.Simulated)) / float64(ep.Simulated)
		}
		if abs := ep.ErrPct; abs < 0 {
			if -abs > rep.MaxAbsErrPct {
				rep.MaxAbsErrPct = -abs
			}
		} else if abs > rep.MaxAbsErrPct {
			rep.MaxAbsErrPct = abs
		}
		rep.Frontier = append(rep.Frontier, ep)
	}
	return rep, nil
}

// Format renders the exploration report as text.
func (r *ExploreReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Design-space exploration: %s\n", r.Workload)
	fmt.Fprintf(&b, "  %d configurations searched analytically, %d calibration runs, %d on the Pareto frontier\n",
		r.Searched, r.Anchors, len(r.Frontier))
	fmt.Fprintf(&b, "  bound violations: %d (every prediction is clamped to its certified lower bound)\n\n", r.BoundViolations)
	fmt.Fprintf(&b, "  %-6s %-44s %-9s %-9s %s\n", "cost", "configuration", "predicted", "simulated", "err")
	for _, p := range r.Frontier {
		sim, errs := "-", "-"
		if p.Simulated > 0 {
			sim = fmt.Sprintf("%d", p.Simulated)
			errs = fmt.Sprintf("%+.1f%%", p.ErrPct)
		}
		fmt.Fprintf(&b, "  %-6.2f %-44s %-9d %-9s %s\n", p.Cost, describeConfig(p.Config), p.Cycles, sim, errs)
	}
	if len(r.Frontier) > 0 && r.Frontier[0].Simulated > 0 {
		fmt.Fprintf(&b, "\n  max |model error| on the frontier: %.1f%%\n", r.MaxAbsErrPct)
	}
	return b.String()
}

func describeConfig(cfg core.Config) string {
	eff := cfg.Effective()
	sb := "off"
	if eff.StandbyStations {
		sb = fmt.Sprintf("on/d%d", eff.StandbyDepth)
	}
	extras := ""
	for c := 1; c <= len(cfg.ExtraUnits)-1; c++ {
		if n := cfg.ExtraUnits[c]; n > 0 {
			extras += fmt.Sprintf(" +%d%s", n, UnitClass(c))
		}
	}
	return fmt.Sprintf("S=%d D=%d ls=%d standby=%s%s",
		eff.ThreadSlots, eff.IssueWidth, eff.LoadStoreUnits, sb, extras)
}

// ModelValidationPoint is one Tables 2–5 cell: the model's prediction
// against the exact re-simulation.
type ModelValidationPoint struct {
	Table     string  `json:"table"`
	Label     string  `json:"label"`
	Predicted uint64  `json:"predicted"`
	Simulated uint64  `json:"simulated"`
	ErrPct    float64 `json:"errPct"`
	Bound     int64   `json:"bound"`
	Anchor    bool    `json:"anchor"` // cell doubled as a calibration run
}

// ModelValidation is the model-vs-simulator comparison across scaled-down
// reproductions of the paper's Tables 2–5.
type ModelValidation struct {
	Points []ModelValidationPoint `json:"points"`
	// PerTable maps each table to its worst |error| in percent.
	PerTable map[string]float64 `json:"perTable"`
	// MaxAbsErrPct is the worst |error| across every cell.
	MaxAbsErrPct float64 `json:"maxAbsErrPct"`
	// BoundViolations counts predictions below the certificate (always 0).
	BoundViolations int `json:"boundViolations"`
}

// ModelValidationConfig sizes the Tables 2–5 reproductions the model is
// validated against. The zero value picks sizes small enough for CI while
// preserving each table's contention structure.
type ModelValidationConfig struct {
	Rays      int // ray-trace rays (Tables 2 and 3); default 48
	Spheres   int // ray-trace spheres; default 6
	LK1N      int // Livermore Kernel 1 iterations (Table 4); default 50
	ListNodes int // linked-list nodes (Table 5); default 40
}

func (c ModelValidationConfig) withDefaults() ModelValidationConfig {
	if c.Rays <= 0 {
		c.Rays = 48
	}
	if c.Spheres <= 0 {
		c.Spheres = 6
	}
	if c.LK1N <= 0 {
		c.LK1N = 50
	}
	if c.ListNodes <= 0 {
		c.ListNodes = 40
	}
	return c
}

// ValidateModel re-simulates scaled-down Tables 2–5, calibrates the
// analytic model on a handful of anchor cells per table, predicts every
// remaining cell, and reports per-point and per-table errors.
func ValidateModel(cfg ModelValidationConfig) (*ModelValidation, error) {
	cfg = cfg.withDefaults()
	v := &ModelValidation{PerTable: make(map[string]float64)}

	record := func(table, label string, p model.Prediction, simulated uint64, anchor bool) {
		pt := ModelValidationPoint{
			Table: table, Label: label,
			Predicted: p.Cycles, Simulated: simulated,
			Bound: p.Bound, Anchor: anchor,
		}
		if simulated > 0 {
			pt.ErrPct = 100 * (float64(p.Cycles) - float64(simulated)) / float64(simulated)
		}
		if int64(p.Cycles) < p.Bound {
			v.BoundViolations++
		}
		abs := pt.ErrPct
		if abs < 0 {
			abs = -abs
		}
		if abs > v.PerTable[table] {
			v.PerTable[table] = abs
		}
		if abs > v.MaxAbsErrPct {
			v.MaxAbsErrPct = abs
		}
		v.Points = append(v.Points, pt)
	}

	// Tables 2 and 3: the ray tracer across slots × load/store units ×
	// standby and issue-width × slots products, one shared workload
	// calibrated once.
	rt, err := BuildRayTrace(RayTraceConfig{Rays: cfg.Rays, Spheres: cfg.Spheres})
	if err != nil {
		return nil, err
	}
	runRT := func(c core.Config) (uint64, error) {
		m, err := rt.NewMemory(rt.Par, c.Effective().ThreadSlots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(c, rt.Par.Text, m)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	wrt := model.NewWorkload("raytrace", rt.Par.Text, nil)
	anchorSet := make(map[core.Config]bool)
	for _, a := range exploreAnchors() {
		m, err := rt.NewMemory(rt.Par, a.Effective().ThreadSlots)
		if err != nil {
			return nil, err
		}
		res, err := RunMT(a, rt.Par.Text, m)
		if err != nil {
			return nil, err
		}
		wrt.AddAnchor(a, res)
		anchorSet[a] = true
	}
	type rtCell struct {
		label string
		cfg   core.Config
	}
	var t2 []rtCell
	for _, s := range []int{2, 4, 8} {
		for _, ls := range []int{1, 2} {
			for _, sb := range []bool{false, true} {
				t2 = append(t2, rtCell{
					fmt.Sprintf("S=%d ls=%d standby=%v", s, ls, sb),
					core.Config{ThreadSlots: s, LoadStoreUnits: ls, StandbyStations: sb},
				})
			}
		}
	}
	var t3 []rtCell
	for _, prod := range []int{2, 4, 8} {
		for d := 1; d <= prod; d *= 2 {
			t3 = append(t3, rtCell{
				fmt.Sprintf("D=%d S=%d", d, prod/d),
				core.Config{ThreadSlots: prod / d, IssueWidth: d, LoadStoreUnits: 2, StandbyStations: true},
			})
		}
	}
	for _, tbl := range []struct {
		name  string
		cells []rtCell
	}{{"table2", t2}, {"table3", t3}} {
		sims, err := runCells(len(tbl.cells), func(i int) (uint64, error) {
			return runRT(tbl.cells[i].cfg)
		})
		if err != nil {
			return nil, fmt.Errorf("model validation %s: %w", tbl.name, err)
		}
		for i, c := range tbl.cells {
			record(tbl.name, c.label, wrt.Predict(c.cfg), sims[i], anchorSet[c.cfg])
		}
	}

	// Table 4: Livermore Kernel 1 under the three scheduling strategies.
	// Each (strategy, slots) cell schedules its own text, so the cell's
	// workload characterizes that text while the strategy's anchor runs
	// (2 and 8 slots) pin the family's stall rates and N(S) trend.
	for _, strat := range []Strategy{ScheduleNone, ScheduleStrategyA, ScheduleStrategyB} {
		strat := strat
		buildLV := func(slots int) (*workload.Livermore, []Instruction, error) {
			lv, err := BuildLivermore(LivermoreConfig{
				N: cfg.LK1N, Threads: slots, Strategy: strat, LoadStoreUnits: 1,
			})
			if err != nil {
				return nil, nil, err
			}
			prog := lv.Par
			if slots == 1 {
				prog = lv.Seq
			}
			return lv, prog.Text, nil
		}
		runLV := func(slots int) (core.Result, error) {
			lv, text, err := buildLV(slots)
			if err != nil {
				return core.Result{}, err
			}
			prog := lv.Par
			if slots == 1 {
				prog = lv.Seq
			}
			m, err := prog.NewMemory(64)
			if err != nil {
				return core.Result{}, err
			}
			return RunMT(core.Config{
				ThreadSlots: slots, LoadStoreUnits: 1, StandbyStations: true,
			}, text, m)
		}
		slotsList := []int{1, 2, 3, 4, 5, 6, 7, 8}
		results, err := runCells(len(slotsList), func(i int) (core.Result, error) {
			return runLV(slotsList[i])
		})
		if err != nil {
			return nil, fmt.Errorf("model validation table4 (%v): %w", strat, err)
		}
		resBySlots := make(map[int]core.Result, len(slotsList))
		for i, s := range slotsList {
			resBySlots[s] = results[i]
		}
		for _, slots := range slotsList {
			_, text, err := buildLV(slots)
			if err != nil {
				return nil, err
			}
			w := model.NewWorkload(fmt.Sprintf("lk1-%v", strat), text, nil)
			// The parallel cells share one text family (the same kernel
			// rescheduled per slot count), so the 2- and 8-slot anchors
			// transfer. The single-slot row executes the *sequential*
			// program — a different text — and anchors on itself.
			anchorSlots := []int{2, 8}
			if slots == 1 {
				anchorSlots = []int{1}
			}
			for _, as := range anchorSlots {
				w.AddAnchor(core.Config{
					ThreadSlots: as, LoadStoreUnits: 1, StandbyStations: true,
				}, resBySlots[as])
			}
			c := core.Config{ThreadSlots: slots, LoadStoreUnits: 1, StandbyStations: true}
			record("table4", fmt.Sprintf("%v S=%d", strat, slots),
				w.Predict(c), resBySlots[slots].Cycles, slots == 1 || slots == 2 || slots == 8)
		}
	}

	// Table 5: the doacross linked-list traversal, whose saturation is a
	// queue-coupling floor rather than a unit or dependence limit.
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: cfg.ListNodes, BreakAt: -1})
	if err != nil {
		return nil, err
	}
	runLL := func(slots int) (core.Result, error) {
		m, err := ll.NewMemory(ll.Par, slots)
		if err != nil {
			return core.Result{}, err
		}
		return RunMT(core.Config{
			ThreadSlots: slots, LoadStoreUnits: 1, StandbyStations: true,
		}, ll.Par.Text, m)
	}
	llSlots := []int{2, 3, 4, 6, 8}
	llRes, err := runCells(len(llSlots), func(i int) (core.Result, error) {
		return runLL(llSlots[i])
	})
	if err != nil {
		return nil, fmt.Errorf("model validation table5: %w", err)
	}
	wll := model.NewWorkload("linkedlist", ll.Par.Text, nil)
	for i, s := range llSlots {
		if s == 2 || s == 8 {
			wll.AddAnchor(core.Config{
				ThreadSlots: s, LoadStoreUnits: 1, StandbyStations: true,
			}, llRes[i])
		}
	}
	for i, s := range llSlots {
		c := core.Config{ThreadSlots: s, LoadStoreUnits: 1, StandbyStations: true}
		record("table5", fmt.Sprintf("S=%d", s), wll.Predict(c), llRes[i].Cycles, s == 2 || s == 8)
	}

	return v, nil
}

// Format renders the validation as text, per-point errors included.
func (v *ModelValidation) Format() string {
	var b strings.Builder
	b.WriteString("Analytic model vs exact simulation (Tables 2-5 reproductions)\n")
	last := ""
	for _, p := range v.Points {
		if p.Table != last {
			fmt.Fprintf(&b, "\n%s (worst |err| %.1f%%)\n", p.Table, v.PerTable[p.Table])
			last = p.Table
		}
		mark := " "
		if p.Anchor {
			mark = "*"
		}
		fmt.Fprintf(&b, "  %s %-28s pred=%-8d sim=%-8d err=%+6.1f%%  bound=%d\n",
			mark, p.Label, p.Predicted, p.Simulated, p.ErrPct, p.Bound)
	}
	tables := make([]string, 0, len(v.PerTable))
	for t := range v.PerTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	b.WriteString("\nper-table worst |err|:")
	for _, t := range tables {
		fmt.Fprintf(&b, " %s=%.1f%%", t, v.PerTable[t])
	}
	fmt.Fprintf(&b, "\nmax |err| = %.1f%%  (* = calibration anchor cell)  bound violations = %d\n",
		v.MaxAbsErrPct, v.BoundViolations)
	return b.String()
}
