package hirata

import "hirata/internal/sched"

// Paper-reported reference values, used by the benchmark harness to print
// paper-vs-measured comparisons and by tests to check reproduction shape.
// (Absolute agreement is not expected: the paper drives its simulator with
// traces of a commercial ray tracer compiled by a commercial compiler; this
// reproduction substitutes a synthetic kernel. See DESIGN.md.)

// PaperTable2 returns the paper's Table 2 speed-up for a configuration, or
// 0 if the paper does not report it.
func PaperTable2(slots, lsUnits int, standby bool) float64 {
	type k struct {
		s, ls int
		sb    bool
	}
	vals := map[k]float64{
		{2, 1, false}: 1.79, {2, 1, true}: 1.83,
		{2, 2, false}: 2.01, {2, 2, true}: 2.02,
		{4, 1, false}: 2.84, {4, 1, true}: 2.89,
		{4, 2, false}: 3.68, {4, 2, true}: 3.72,
		{8, 1, false}: 3.22, {8, 1, true}: 3.22,
		{8, 2, false}: 5.68, {8, 2, true}: 5.79,
	}
	return vals[k{slots, lsUnits, standby}]
}

// PaperTable3 returns the paper's Table 3 speed-up for a (D,S) processor,
// or 0 if not reported. The (8,1) entry is unreadable in the source scan.
func PaperTable3(d, s int) float64 {
	type k struct{ d, s int }
	vals := map[k]float64{
		{1, 2}: 2.02, {2, 1}: 1.31,
		{1, 4}: 3.72, {2, 2}: 2.43, {4, 1}: 1.52,
		{1, 8}: 5.79, {2, 4}: 4.37, {4, 2}: 2.79,
	}
	return vals[k{d, s}]
}

// PaperTable4 returns the paper's Table 4 cycles-per-iteration, or 0 where
// the scanned table is unreadable. Known values: the non-optimized and
// strategy-A single-slot rows, the ~8.1-8.9 cycle values around six slots,
// and the 8-cycle saturation at eight slots ((3+1)×2 = 8, §3.4).
func PaperTable4(slots int, strategy Strategy) float64 {
	switch strategy {
	case sched.None:
		switch slots {
		case 1:
			return 50
		case 6:
			return 8.83
		case 8:
			return 8
		}
	case sched.StrategyA:
		switch slots {
		case 1:
			return 42
		case 6:
			return 8.87
		case 8:
			return 8
		}
	case sched.StrategyB:
		switch slots {
		case 6:
			return 8.125
		case 8:
			return 8
		}
	}
	return 0
}

// PaperTable5 returns the paper's Table 5 cycles-per-iteration, or 0 if
// not reported. The sequential version takes 56 cycles per iteration; the
// asymptotic speed-up is 56/17 = 3.29.
func PaperTable5(slots int) float64 {
	switch slots {
	case 2:
		return 32.5
	case 3:
		return 21.67
	case 4:
		return 17
	}
	if slots > 4 {
		return 17 // "an increase in the number of thread slots" saturates at 17
	}
	return 0
}

// PaperTable5Sequential is the paper's sequential cycles per iteration.
const PaperTable5Sequential = 56.0
