package hirata

import (
	"runtime"
	"sync/atomic"

	"hirata/internal/sweep"
)

// sweepWorkers holds the configured sweep parallelism; 0 means NumCPU.
var sweepWorkers atomic.Int32

// sweepTel holds the optional telemetry sink observing every sweep; the
// box makes the interface value swappable with a single atomic pointer.
var sweepTel atomic.Pointer[sweepTelemetryBox]

type sweepTelemetryBox struct{ t sweep.Telemetry }

// SetSweepTelemetry attaches a telemetry sink (normally a *SweepRecorder)
// to every subsequent experiment sweep: per-worker cell timelines and the
// shrinking pending-cell count feed the host Chrome trace and /hostmetrics.
// Pass nil to detach; a detached sweep pays nothing. Telemetry only
// observes timing — results stay byte-identical (see internal/sweep).
func SetSweepTelemetry(t sweep.Telemetry) {
	if t == nil {
		sweepTel.Store(nil)
		return
	}
	sweepTel.Store(&sweepTelemetryBox{t: t})
}

func sweepTelemetry() sweep.Telemetry {
	if b := sweepTel.Load(); b != nil {
		return b.t
	}
	return nil
}

// SetParallelism sets how many simulation cells the experiment runners
// (RunTable2..RunTable5, RunSpeedupCurve, RunMultiprogram and the extras)
// execute concurrently. Each cell owns a private Processor and Memory and
// the results are assembled in cell order, so any setting produces
// byte-identical output: n == 1 is the sequential reference path, n <= 0
// restores the default of runtime.NumCPU(). See docs/PERFORMANCE.md.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
}

// Parallelism returns the effective sweep worker count.
func Parallelism() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// runCells executes n independent simulation cells on the sweep engine at
// the configured parallelism, returning results in cell order.
func runCells[T any](n int, fn func(int) (T, error)) ([]T, error) {
	return sweep.MapObserved(n, Parallelism(), fn, sweepTelemetry())
}
