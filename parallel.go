package hirata

import (
	"runtime"
	"sync/atomic"

	"hirata/internal/sweep"
)

// sweepWorkers holds the configured sweep parallelism; 0 means NumCPU.
var sweepWorkers atomic.Int32

// SetParallelism sets how many simulation cells the experiment runners
// (RunTable2..RunTable5, RunSpeedupCurve, RunMultiprogram and the extras)
// execute concurrently. Each cell owns a private Processor and Memory and
// the results are assembled in cell order, so any setting produces
// byte-identical output: n == 1 is the sequential reference path, n <= 0
// restores the default of runtime.NumCPU(). See docs/PERFORMANCE.md.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
}

// Parallelism returns the effective sweep worker count.
func Parallelism() int {
	if n := int(sweepWorkers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// runCells executes n independent simulation cells on the sweep engine at
// the configured parallelism, returning results in cell order.
func runCells[T any](n int, fn func(int) (T, error)) ([]T, error) {
	return sweep.Map(n, Parallelism(), fn)
}
