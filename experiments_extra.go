package hirata

import (
	"fmt"
	"strings"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// RotationSweepCell is one rotation-interval measurement (§3.2: "we also
// examined the execution cycles with various rotation intervals (2^n
// cycles, where n is 0..8)").
type RotationSweepCell struct {
	Interval int
	Cycles   uint64
	Speedup  float64
}

// RunRotationSweep measures the ray tracer with rotation intervals 2^0..2^8
// on the given machine shape.
func RunRotationSweep(w RayTraceConfig, slots, lsUnits int) ([]RotationSweepCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	// Cell 0 is the sequential baseline; cells 1..9 sweep intervals 2^0..2^8.
	cycles, err := runCells(10, func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(RISCConfig{LoadStoreUnits: lsUnits}, rt.Seq.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		interval := 1 << (i - 1)
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:      slots,
			LoadStoreUnits:   lsUnits,
			StandbyStations:  true,
			RotationInterval: interval,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("rotation sweep (interval %d): %w", interval, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var out []RotationSweepCell
	for n := 0; n <= 8; n++ {
		out = append(out, RotationSweepCell{
			Interval: 1 << n,
			Cycles:   cycles[n+1],
			Speedup:  float64(cycles[0]) / float64(cycles[n+1]),
		})
	}
	return out, nil
}

// PrivateICacheCell compares shared and private instruction caches for one
// machine shape (§3.2's variant experiment: the paper reports 1.79→1.80
// and 5.79→5.80, i.e. sharing the instruction cache is essentially free).
type PrivateICacheCell struct {
	Slots          int
	LoadStoreUnits int
	Standby        bool
	SharedSpeedup  float64
	PrivateSpeedup float64
}

// RunPrivateICache measures the private-fetch-unit variant on the two
// corner configurations the paper quotes plus any extra shapes given.
func RunPrivateICache(w RayTraceConfig) ([]PrivateICacheCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	shapes := []struct {
		slots, ls int
		standby   bool
	}{
		{2, 1, false},
		{8, 2, true},
	}
	// Three cells per shape: the baseline, the shared-cache run and the
	// private-cache run.
	cycles, err := runCells(3*len(shapes), func(i int) (uint64, error) {
		sh := shapes[i/3]
		if i%3 == 0 {
			mSeq, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(RISCConfig{LoadStoreUnits: sh.ls}, rt.Seq.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		private := i%3 == 2
		m, err := rt.NewMemory(rt.Par, sh.slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     sh.slots,
			LoadStoreUnits:  sh.ls,
			StandbyStations: sh.standby,
			PrivateICache:   private,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var out []PrivateICacheCell
	for i, sh := range shapes {
		base := float64(cycles[3*i])
		out = append(out, PrivateICacheCell{
			Slots:          sh.slots,
			LoadStoreUnits: sh.ls,
			Standby:        sh.standby,
			SharedSpeedup:  base / float64(cycles[3*i+1]),
			PrivateSpeedup: base / float64(cycles[3*i+2]),
		})
	}
	return out, nil
}

// UtilizationReport returns per-functional-unit utilization of the ray
// tracer on a machine shape (the §3.2 observation that the load/store unit
// reaches 99% at eight thread slots).
func UtilizationReport(w RayTraceConfig, slots, lsUnits int) (MTResult, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return MTResult{}, err
	}
	m, err := rt.NewMemory(rt.Par, slots)
	if err != nil {
		return MTResult{}, err
	}
	return RunMT(core.Config{
		ThreadSlots:     slots,
		LoadStoreUnits:  lsUnits,
		StandbyStations: true,
	}, rt.Par.Text, m)
}

// FiniteCacheCell is one finite-cache measurement (the paper's stated
// future work: "we are currently working on evaluating finite cache
// effects").
type FiniteCacheCell struct {
	Lines   int // data-cache lines (0 = perfect)
	Cycles  uint64
	Speedup float64 // vs the same machine with a perfect cache
}

// RunFiniteCache sweeps data-cache sizes for the ray tracer on a fixed
// machine shape, quantifying how finite caches erode multithreaded
// speed-up (more threads → more working sets competing for the cache).
func RunFiniteCache(w RayTraceConfig, slots int, lines []int) ([]FiniteCacheCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	runOne := func(nLines int) (uint64, error) {
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  2,
			StandbyStations: true,
			DCache:          mem.CacheConfig{Lines: nLines, WordsPerLine: 4, MissPenalty: 20},
		}, rt.Par.Text, m)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	// Cell 0 is the perfect cache; cells 1.. sweep the finite sizes.
	cycles, err := runCells(1+len(lines), func(i int) (uint64, error) {
		if i == 0 {
			return runOne(0)
		}
		return runOne(lines[i-1])
	})
	if err != nil {
		return nil, err
	}
	perfect := cycles[0]
	out := []FiniteCacheCell{{Lines: 0, Cycles: perfect, Speedup: 1}}
	for i, n := range lines {
		out = append(out, FiniteCacheCell{Lines: n, Cycles: cycles[i+1], Speedup: float64(perfect) / float64(cycles[i+1])})
	}
	return out, nil
}

// QueueDepthCell is one queue-register-depth ablation measurement for the
// eager while-loop (DESIGN.md ablations; the paper uses depth-1 queue
// registers with full/empty bits).
type QueueDepthCell struct {
	Depth         int
	CyclesPerIter float64
}

// RunQueueDepthAblation sweeps the queue register FIFO depth on the eager
// linked-list traversal.
func RunQueueDepthAblation(nodes, slots int, depths []int) ([]QueueDepthCell, error) {
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: nodes, BreakAt: -1})
	if err != nil {
		return nil, err
	}
	out, err := runCells(len(depths), func(i int) (QueueDepthCell, error) {
		d := depths[i]
		m, err := ll.NewMemory(ll.Par, slots)
		if err != nil {
			return QueueDepthCell{}, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
			QueueDepth:      d,
		}, ll.Par.Text, m)
		if err != nil {
			return QueueDepthCell{}, fmt.Errorf("queue depth %d: %w", d, err)
		}
		return QueueDepthCell{Depth: d, CyclesPerIter: float64(res.Cycles) / float64(nodes)}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ConcurrentMTCell is one concurrent-multithreading measurement: threads
// with remote-memory loads, with context switching enabled or suppressed.
type ConcurrentMTCell struct {
	ContextFrames int
	Suppressed    bool // context switching suppressed (explicit mode)
	Cycles        uint64
	Switches      uint64
}

// RunConcurrentMT measures how rapid context switching between context
// frames hides remote-memory latency (§2.1.3, which the paper outlines but
// does not evaluate). It runs `threads` copies of a pointer-chase-plus-
// compute kernel whose data lives in remote memory on a single thread
// slot: once with data-absence traps suppressed (threads simply stall on
// remote loads, one after another) and once per requested frame count with
// switching enabled.
func RunConcurrentMT(threads int, frames []int, remoteLatency int) ([]ConcurrentMTCell, error) {
	prog, err := Assemble(concurrentMTSrc)
	if err != nil {
		return nil, err
	}
	for _, nf := range frames {
		if nf < threads {
			return nil, fmt.Errorf("hirata: concurrent MT needs at least one context frame per thread (%d < %d)", nf, threads)
		}
	}
	runOne := func(nf int, suppress bool) (ConcurrentMTCell, error) {
		m := NewMemoryWithRemote(8192, 4096, remoteLatency)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%97)
		}
		p, err := core.New(core.Config{
			ThreadSlots:     1,
			ContextFrames:   nf,
			StandbyStations: true,
			// Explicit-rotation mode suppresses data-absence context
			// switches (§2.3.1), giving the stall-through baseline.
			ExplicitRotation: suppress,
		}, prog.Text, m)
		if err != nil {
			return ConcurrentMTCell{}, err
		}
		for i := 0; i < threads; i++ {
			if err := p.StartThread(0); err != nil {
				return ConcurrentMTCell{}, err
			}
		}
		res, err := p.Run()
		if err != nil {
			return ConcurrentMTCell{}, fmt.Errorf("concurrent MT (%d frames, suppress=%v): %w", nf, suppress, err)
		}
		return ConcurrentMTCell{ContextFrames: nf, Suppressed: suppress, Cycles: res.Cycles, Switches: res.Switches}, nil
	}

	// Cell 0 is the stall-through baseline; cells 1.. enable switching.
	out, err := runCells(1+len(frames), func(i int) (ConcurrentMTCell, error) {
		if i == 0 {
			return runOne(threads, true)
		}
		return runOne(frames[i-1], false)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// concurrentMTSrc is RunConcurrentMT's kernel: chained loads from a
// per-thread remote block with a little compute between them. The
// cycle-skip differential tests reuse it as the high-remote-latency
// workload where quiescent stretches dominate.
const concurrentMTSrc = `
	tid  r1
	slli r2, r1, 4
	addi r3, r2, 4096     ; this thread's remote block
	li   r6, 8            ; 8 chained remote loads
loop:	lw   r4, 0(r3)
	add  r5, r5, r4
	addi r3, r3, 1
	addi r6, r6, -1
	bnez r6, loop
	mul  r5, r5, r5
	sw   r5, 100(r1)
	halt
`

// unitClassName is re-exported for report rendering.
func unitClassName(u isa.UnitClass) string { return u.String() }

// IssueBandwidthCell compares the paper's simultaneous issue against the
// single-issue multithreaded precursors of §4 (HEP-style cycle-by-cycle
// interleaving; Farrens & Pleszkun's competing streams): the same machine
// with the total issue bandwidth capped at one instruction per cycle.
type IssueBandwidthCell struct {
	Slots              int
	SimultaneousCycles uint64
	SingleIssueCycles  uint64
	Simultaneous       float64 // speed-up vs sequential baseline
	SingleIssue        float64
}

// RunIssueBandwidth measures the ray tracer under both issue disciplines.
func RunIssueBandwidth(w RayTraceConfig, slots []int) ([]IssueBandwidthCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	// Cell 0 is the sequential baseline; then (slots, cap) pairs in order.
	cycles, err := runCells(1+2*len(slots), func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, rt.Seq.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		s := slots[(i-1)/2]
		cap := (i - 1) % 2 // 0 = simultaneous, 1 = single-issue
		m, err := rt.NewMemory(rt.Par, s)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:      s,
			LoadStoreUnits:   2,
			StandbyStations:  true,
			MaxIssuePerCycle: cap,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("issue bandwidth (%d slots, cap %d): %w", s, cap, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	base := float64(cycles[0])
	var out []IssueBandwidthCell
	for i, s := range slots {
		simul, single := cycles[1+2*i], cycles[2+2*i]
		out = append(out, IssueBandwidthCell{
			Slots:              s,
			SimultaneousCycles: simul,
			SingleIssueCycles:  single,
			Simultaneous:       base / float64(simul),
			SingleIssue:        base / float64(single),
		})
	}
	return out, nil
}

// DoacrossCell is one doacross-loop measurement (Livermore Kernel 5
// through queue registers).
type DoacrossCell struct {
	Slots         int
	Cycles        uint64
	CyclesPerIter float64
	Speedup       float64 // vs the sequential loop on the baseline machine
}

// RunDoacross measures the queue-register doacross execution of a
// first-order recurrence for the given slot counts.
func RunDoacross(n int, slots []int) ([]DoacrossCell, uint64, error) {
	rc, err := BuildRecurrence(RecurrenceConfig{N: n})
	if err != nil {
		return nil, 0, err
	}
	// Cell 0 is the sequential baseline; cells 1.. sweep the slot counts.
	cycles, err := runCells(1+len(slots), func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := rc.NewMemory(rc.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(RISCConfig{}, rc.Seq.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		s := slots[i-1]
		m, err := rc.NewMemory(rc.Par, s)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{ThreadSlots: s, StandbyStations: true}, rc.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("doacross (%d slots): %w", s, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var out []DoacrossCell
	for i, s := range slots {
		out = append(out, DoacrossCell{
			Slots:         s,
			Cycles:        cycles[i+1],
			CyclesPerIter: float64(cycles[i+1]) / float64(n),
			Speedup:       float64(cycles[0]) / float64(cycles[i+1]),
		})
	}
	return out, cycles[0], nil
}

// SWPAblationCell contrasts strategy B against the software-pipelining
// scheduler on Livermore Kernel 1 (§2.3.2's motivating comparison).
type SWPAblationCell struct {
	Slots         int
	Strategy      Strategy
	CyclesPerIter float64
	CodeSize      int // instructions per loop body, including NOP padding
}

// RunSWPAblation measures LK1 cycles per iteration for strategy B vs the
// NOP-padding software pipeliner at the given thread-slot counts.
func RunSWPAblation(n int, slots []int) ([]SWPAblationCell, error) {
	strats := []Strategy{ScheduleStrategyB, ScheduleSWP}
	out, err := runCells(len(slots)*len(strats), func(i int) (SWPAblationCell, error) {
		s := slots[i/len(strats)]
		strat := strats[i%len(strats)]
		lv, err := BuildLivermore(LivermoreConfig{N: n, Threads: s, Strategy: strat, LoadStoreUnits: 1})
		if err != nil {
			return SWPAblationCell{}, err
		}
		prog := lv.Par
		if s == 1 {
			prog = lv.Seq
		}
		m, err := prog.NewMemory(64)
		if err != nil {
			return SWPAblationCell{}, err
		}
		res, err := RunMT(core.Config{ThreadSlots: s, LoadStoreUnits: 1, StandbyStations: true}, prog.Text, m)
		if err != nil {
			return SWPAblationCell{}, fmt.Errorf("swp ablation (%v, %d slots): %w", strat, s, err)
		}
		return SWPAblationCell{
			Slots:         s,
			Strategy:      strat,
			CyclesPerIter: float64(res.Cycles) / float64(n),
			CodeSize:      len(prog.Text),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StandbyDepthCell measures the effect of deepening the standby stations
// beyond the paper's single latch (toward Tomasulo-style reservation
// stations, which §2.1.1 explicitly contrasts them with).
type StandbyDepthCell struct {
	Depth   int
	Cycles  uint64
	Speedup float64 // vs the sequential baseline
}

// RunStandbyDepth sweeps the standby-station depth on the ray tracer.
func RunStandbyDepth(w RayTraceConfig, slots int, depths []int) ([]StandbyDepthCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	// Cell 0 is the sequential baseline; cells 1.. sweep the depths.
	cycles, err := runCells(1+len(depths), func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				return 0, err
			}
			base, err := RunRISC(RISCConfig{LoadStoreUnits: 1}, rt.Seq.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return base.Cycles, nil
		}
		d := depths[i-1]
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
			StandbyDepth:    d,
		}, rt.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("standby depth %d: %w", d, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var out []StandbyDepthCell
	for i, d := range depths {
		out = append(out, StandbyDepthCell{
			Depth:   d,
			Cycles:  cycles[i+1],
			Speedup: float64(cycles[0]) / float64(cycles[i+1]),
		})
	}
	return out, nil
}

// UnrollCell measures loop unrolling (the paper's reference [3] transform)
// combined with static scheduling on Livermore Kernel 1.
type UnrollCell struct {
	Slots         int
	Unroll        int
	CyclesPerIter float64
}

// RunUnrollAblation sweeps the unroll factor under strategy A.
func RunUnrollAblation(n int, slots, unrolls []int) ([]UnrollCell, error) {
	// Each (slots, unroll) cell builds its own program; run the grid on the
	// sweep engine.
	type spec struct{ s, u int }
	var specs []spec
	for _, s := range slots {
		for _, u := range unrolls {
			specs = append(specs, spec{s: s, u: u})
		}
	}
	return runCells(len(specs), func(i int) (UnrollCell, error) {
		sp := specs[i]
		lv, err := BuildLivermore(LivermoreConfig{
			N: n, Threads: sp.s, Strategy: ScheduleStrategyA, Unroll: sp.u, LoadStoreUnits: 1,
		})
		if err != nil {
			return UnrollCell{}, err
		}
		prog := lv.Par
		if sp.s == 1 {
			prog = lv.Seq
		}
		m, err := prog.NewMemory(64)
		if err != nil {
			return UnrollCell{}, err
		}
		res, err := RunMT(core.Config{ThreadSlots: sp.s, LoadStoreUnits: 1, StandbyStations: true}, prog.Text, m)
		if err != nil {
			return UnrollCell{}, fmt.Errorf("unroll %d (%d slots): %w", sp.u, sp.s, err)
		}
		return UnrollCell{Slots: sp.s, Unroll: sp.u, CyclesPerIter: float64(res.Cycles) / float64(n)}, nil
	})
}

// BranchHidingCell measures how multithreading hides branch delays
// (§2.1.2: "the parallel multithreading scheme has a potential to hide
// the delay of branches"). The workload is maximally branchy: a bounded
// Collatz iteration per element, one data-dependent branch every few
// instructions.
type BranchHidingCell struct {
	Slots          int
	Cycles         uint64
	Speedup        float64 // vs the sequential baseline RISC
	PerThreadEff   float64 // Speedup / Slots
	TwoFetch       float64 // with a second shared fetch unit (§2.1.1's remedy)
	PrivateSpeedup float64 // with per-slot fetch units
}

// branchySrc is the Collatz step-count kernel. Thread i handles elements
// i, i+stride, ... and stores the step count for each.
const branchySrc = `
	.data
	.org 8
gthreadsbh: .word 1
gn:     .word 96
vals:   .space 96
steps:  .space 96
	.text
	ffork
	tid  r1
	lw   r2, gthreadsbh
	lw   r3, gn
	mov  r4, r1          ; element index
eloop:	slt  r5, r4, r3
	beqz r5, done
	la   r6, vals
	add  r6, r6, r4
	lw   r7, 0(r6)       ; x
	li   r8, 0           ; step count
cloop:	slti r5, r7, 2       ; x < 2 ?
	bnez r5, cdone
	slti r5, r8, 64      ; step cap
	beqz r5, cdone
	andi r5, r7, 1
	bnez r5, odd
	srai r7, r7, 1       ; x /= 2
	j    next
odd:	slli r5, r7, 1
	add  r7, r5, r7
	addi r7, r7, 1       ; x = 3x + 1
next:	addi r8, r8, 1
	j    cloop
cdone:	la   r6, steps
	add  r6, r6, r4
	sw   r8, 0(r6)
	add  r4, r4, r2
	j    eloop
done:	halt
`

// RunBranchHiding measures the branchy kernel across thread counts.
func RunBranchHiding(slots []int) ([]BranchHidingCell, uint64, error) {
	prog, err := Assemble(branchySrc)
	if err != nil {
		return nil, 0, err
	}
	mkMem := func(threads int) (*Memory, error) {
		m, err := prog.NewMemory(64)
		if err != nil {
			return nil, err
		}
		m.SetInt(prog.MustSymbol("gthreadsbh"), int64(threads))
		base := prog.MustSymbol("vals")
		for i := int64(0); i < 96; i++ {
			m.SetInt(base+i, 3+i*7%97)
		}
		return m, nil
	}

	// Sequential baseline (same program, one thread, on the RISC machine —
	// ffork degrades on a 1-thread basis, so build a fork-free variant by
	// running the MT machine? No: the RISC machine rejects ffork, so the
	// baseline uses the multithreaded pipeline with one slot *and* the
	// RISC machine via a forkless program below).
	seqProg, err := Assemble(strings.Replace(branchySrc, "\tffork\n", "", 1))
	if err != nil {
		return nil, 0, err
	}

	// Cell 0 is the RISC baseline; then three fetch variants per slot count.
	variants := []struct {
		fetchUnits int
		private    bool
	}{{1, false}, {2, false}, {0, true}}
	cycles, err := runCells(1+len(slots)*len(variants), func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := seqProg.NewMemory(64)
			if err != nil {
				return 0, err
			}
			mSeq.SetInt(seqProg.MustSymbol("gthreadsbh"), 1)
			base := seqProg.MustSymbol("vals")
			for j := int64(0); j < 96; j++ {
				mSeq.SetInt(base+j, 3+j*7%97)
			}
			seq, err := RunRISC(RISCConfig{}, seqProg.Text, mSeq)
			if err != nil {
				return 0, err
			}
			return seq.Cycles, nil
		}
		s := slots[(i-1)/len(variants)]
		variant := variants[(i-1)%len(variants)]
		m, err := mkMem(s)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     s,
			StandbyStations: true,
			FetchUnits:      variant.fetchUnits,
			PrivateICache:   variant.private,
		}, prog.Text, m)
		if err != nil {
			return 0, fmt.Errorf("branch hiding (%d slots): %w", s, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, 0, err
	}
	seqCycles := cycles[0]
	var out []BranchHidingCell
	for si, s := range slots {
		cell := BranchHidingCell{Slots: s}
		for vi, variant := range variants {
			c := cycles[1+si*len(variants)+vi]
			sp := float64(seqCycles) / float64(c)
			switch {
			case variant.private:
				cell.PrivateSpeedup = sp
			case variant.fetchUnits == 2:
				cell.TwoFetch = sp
			default:
				cell.Cycles = c
				cell.Speedup = sp
				cell.PerThreadEff = sp / float64(s)
			}
		}
		out = append(out, cell)
	}
	return out, seqCycles, nil
}
