package hirata

import (
	"fmt"
	"strings"

	"hirata/internal/core"
	"hirata/internal/isa"
	"hirata/internal/mem"
)

// RotationSweepCell is one rotation-interval measurement (§3.2: "we also
// examined the execution cycles with various rotation intervals (2^n
// cycles, where n is 0..8)").
type RotationSweepCell struct {
	Interval int
	Cycles   uint64
	Speedup  float64
}

// RunRotationSweep measures the ray tracer with rotation intervals 2^0..2^8
// on the given machine shape.
func RunRotationSweep(w RayTraceConfig, slots, lsUnits int) ([]RotationSweepCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	mSeq, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	base, err := RunRISC(RISCConfig{LoadStoreUnits: lsUnits}, rt.Seq.Text, mSeq)
	if err != nil {
		return nil, err
	}
	var out []RotationSweepCell
	for n := 0; n <= 8; n++ {
		interval := 1 << n
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return nil, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:      slots,
			LoadStoreUnits:   lsUnits,
			StandbyStations:  true,
			RotationInterval: interval,
		}, rt.Par.Text, m)
		if err != nil {
			return nil, fmt.Errorf("rotation sweep (interval %d): %w", interval, err)
		}
		out = append(out, RotationSweepCell{
			Interval: interval,
			Cycles:   res.Cycles,
			Speedup:  float64(base.Cycles) / float64(res.Cycles),
		})
	}
	return out, nil
}

// PrivateICacheCell compares shared and private instruction caches for one
// machine shape (§3.2's variant experiment: the paper reports 1.79→1.80
// and 5.79→5.80, i.e. sharing the instruction cache is essentially free).
type PrivateICacheCell struct {
	Slots          int
	LoadStoreUnits int
	Standby        bool
	SharedSpeedup  float64
	PrivateSpeedup float64
}

// RunPrivateICache measures the private-fetch-unit variant on the two
// corner configurations the paper quotes plus any extra shapes given.
func RunPrivateICache(w RayTraceConfig) ([]PrivateICacheCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	shapes := []struct {
		slots, ls int
		standby   bool
	}{
		{2, 1, false},
		{8, 2, true},
	}
	var out []PrivateICacheCell
	for _, sh := range shapes {
		mSeq, err := rt.NewMemory(rt.Seq, 1)
		if err != nil {
			return nil, err
		}
		base, err := RunRISC(RISCConfig{LoadStoreUnits: sh.ls}, rt.Seq.Text, mSeq)
		if err != nil {
			return nil, err
		}
		cell := PrivateICacheCell{Slots: sh.slots, LoadStoreUnits: sh.ls, Standby: sh.standby}
		for _, private := range []bool{false, true} {
			m, err := rt.NewMemory(rt.Par, sh.slots)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{
				ThreadSlots:     sh.slots,
				LoadStoreUnits:  sh.ls,
				StandbyStations: sh.standby,
				PrivateICache:   private,
			}, rt.Par.Text, m)
			if err != nil {
				return nil, err
			}
			sp := float64(base.Cycles) / float64(res.Cycles)
			if private {
				cell.PrivateSpeedup = sp
			} else {
				cell.SharedSpeedup = sp
			}
		}
		out = append(out, cell)
	}
	return out, nil
}

// UtilizationReport returns per-functional-unit utilization of the ray
// tracer on a machine shape (the §3.2 observation that the load/store unit
// reaches 99% at eight thread slots).
func UtilizationReport(w RayTraceConfig, slots, lsUnits int) (MTResult, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return MTResult{}, err
	}
	m, err := rt.NewMemory(rt.Par, slots)
	if err != nil {
		return MTResult{}, err
	}
	return RunMT(core.Config{
		ThreadSlots:     slots,
		LoadStoreUnits:  lsUnits,
		StandbyStations: true,
	}, rt.Par.Text, m)
}

// FiniteCacheCell is one finite-cache measurement (the paper's stated
// future work: "we are currently working on evaluating finite cache
// effects").
type FiniteCacheCell struct {
	Lines   int // data-cache lines (0 = perfect)
	Cycles  uint64
	Speedup float64 // vs the same machine with a perfect cache
}

// RunFiniteCache sweeps data-cache sizes for the ray tracer on a fixed
// machine shape, quantifying how finite caches erode multithreaded
// speed-up (more threads → more working sets competing for the cache).
func RunFiniteCache(w RayTraceConfig, slots int, lines []int) ([]FiniteCacheCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	var perfect uint64
	var out []FiniteCacheCell
	runOne := func(nLines int) (uint64, error) {
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  2,
			StandbyStations: true,
			DCache:          mem.CacheConfig{Lines: nLines, WordsPerLine: 4, MissPenalty: 20},
		}, rt.Par.Text, m)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	perfect, err = runOne(0)
	if err != nil {
		return nil, err
	}
	out = append(out, FiniteCacheCell{Lines: 0, Cycles: perfect, Speedup: 1})
	for _, n := range lines {
		cyc, err := runOne(n)
		if err != nil {
			return nil, err
		}
		out = append(out, FiniteCacheCell{Lines: n, Cycles: cyc, Speedup: float64(perfect) / float64(cyc)})
	}
	return out, nil
}

// QueueDepthCell is one queue-register-depth ablation measurement for the
// eager while-loop (DESIGN.md ablations; the paper uses depth-1 queue
// registers with full/empty bits).
type QueueDepthCell struct {
	Depth         int
	CyclesPerIter float64
}

// RunQueueDepthAblation sweeps the queue register FIFO depth on the eager
// linked-list traversal.
func RunQueueDepthAblation(nodes, slots int, depths []int) ([]QueueDepthCell, error) {
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: nodes, BreakAt: -1})
	if err != nil {
		return nil, err
	}
	var out []QueueDepthCell
	for _, d := range depths {
		m, err := ll.NewMemory(ll.Par, slots)
		if err != nil {
			return nil, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
			QueueDepth:      d,
		}, ll.Par.Text, m)
		if err != nil {
			return nil, fmt.Errorf("queue depth %d: %w", d, err)
		}
		out = append(out, QueueDepthCell{Depth: d, CyclesPerIter: float64(res.Cycles) / float64(nodes)})
	}
	return out, nil
}

// ConcurrentMTCell is one concurrent-multithreading measurement: threads
// with remote-memory loads, with context switching enabled or suppressed.
type ConcurrentMTCell struct {
	ContextFrames int
	Suppressed    bool // context switching suppressed (explicit mode)
	Cycles        uint64
	Switches      uint64
}

// RunConcurrentMT measures how rapid context switching between context
// frames hides remote-memory latency (§2.1.3, which the paper outlines but
// does not evaluate). It runs `threads` copies of a pointer-chase-plus-
// compute kernel whose data lives in remote memory on a single thread
// slot: once with data-absence traps suppressed (threads simply stall on
// remote loads, one after another) and once per requested frame count with
// switching enabled.
func RunConcurrentMT(threads int, frames []int, remoteLatency int) ([]ConcurrentMTCell, error) {
	src := `
		tid  r1
		slli r2, r1, 4
		addi r3, r2, 4096     ; this thread's remote block
		li   r6, 8            ; 8 chained remote loads
	loop:	lw   r4, 0(r3)
		add  r5, r5, r4
		addi r3, r3, 1
		addi r6, r6, -1
		bnez r6, loop
		mul  r5, r5, r5
		sw   r5, 100(r1)
		halt
	`
	prog, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	for _, nf := range frames {
		if nf < threads {
			return nil, fmt.Errorf("hirata: concurrent MT needs at least one context frame per thread (%d < %d)", nf, threads)
		}
	}
	runOne := func(nf int, suppress bool) (ConcurrentMTCell, error) {
		m := NewMemoryWithRemote(8192, 4096, remoteLatency)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%97)
		}
		p, err := core.New(core.Config{
			ThreadSlots:     1,
			ContextFrames:   nf,
			StandbyStations: true,
			// Explicit-rotation mode suppresses data-absence context
			// switches (§2.3.1), giving the stall-through baseline.
			ExplicitRotation: suppress,
		}, prog.Text, m)
		if err != nil {
			return ConcurrentMTCell{}, err
		}
		for i := 0; i < threads; i++ {
			if err := p.StartThread(0); err != nil {
				return ConcurrentMTCell{}, err
			}
		}
		res, err := p.Run()
		if err != nil {
			return ConcurrentMTCell{}, fmt.Errorf("concurrent MT (%d frames, suppress=%v): %w", nf, suppress, err)
		}
		return ConcurrentMTCell{ContextFrames: nf, Suppressed: suppress, Cycles: res.Cycles, Switches: res.Switches}, nil
	}

	base, err := runOne(threads, true)
	if err != nil {
		return nil, err
	}
	out := []ConcurrentMTCell{base}
	for _, nf := range frames {
		cell, err := runOne(nf, false)
		if err != nil {
			return nil, err
		}
		out = append(out, cell)
	}
	return out, nil
}

// unitClassName is re-exported for report rendering.
func unitClassName(u isa.UnitClass) string { return u.String() }

// IssueBandwidthCell compares the paper's simultaneous issue against the
// single-issue multithreaded precursors of §4 (HEP-style cycle-by-cycle
// interleaving; Farrens & Pleszkun's competing streams): the same machine
// with the total issue bandwidth capped at one instruction per cycle.
type IssueBandwidthCell struct {
	Slots              int
	SimultaneousCycles uint64
	SingleIssueCycles  uint64
	Simultaneous       float64 // speed-up vs sequential baseline
	SingleIssue        float64
}

// RunIssueBandwidth measures the ray tracer under both issue disciplines.
func RunIssueBandwidth(w RayTraceConfig, slots []int) ([]IssueBandwidthCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	mSeq, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	base, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, rt.Seq.Text, mSeq)
	if err != nil {
		return nil, err
	}
	var out []IssueBandwidthCell
	for _, s := range slots {
		cell := IssueBandwidthCell{Slots: s}
		for _, cap := range []int{0, 1} {
			m, err := rt.NewMemory(rt.Par, s)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{
				ThreadSlots:      s,
				LoadStoreUnits:   2,
				StandbyStations:  true,
				MaxIssuePerCycle: cap,
			}, rt.Par.Text, m)
			if err != nil {
				return nil, fmt.Errorf("issue bandwidth (%d slots, cap %d): %w", s, cap, err)
			}
			sp := float64(base.Cycles) / float64(res.Cycles)
			if cap == 0 {
				cell.SimultaneousCycles, cell.Simultaneous = res.Cycles, sp
			} else {
				cell.SingleIssueCycles, cell.SingleIssue = res.Cycles, sp
			}
		}
		out = append(out, cell)
	}
	return out, nil
}

// DoacrossCell is one doacross-loop measurement (Livermore Kernel 5
// through queue registers).
type DoacrossCell struct {
	Slots         int
	Cycles        uint64
	CyclesPerIter float64
	Speedup       float64 // vs the sequential loop on the baseline machine
}

// RunDoacross measures the queue-register doacross execution of a
// first-order recurrence for the given slot counts.
func RunDoacross(n int, slots []int) ([]DoacrossCell, uint64, error) {
	rc, err := BuildRecurrence(RecurrenceConfig{N: n})
	if err != nil {
		return nil, 0, err
	}
	mSeq, err := rc.NewMemory(rc.Seq, 1)
	if err != nil {
		return nil, 0, err
	}
	base, err := RunRISC(RISCConfig{}, rc.Seq.Text, mSeq)
	if err != nil {
		return nil, 0, err
	}
	var out []DoacrossCell
	for _, s := range slots {
		m, err := rc.NewMemory(rc.Par, s)
		if err != nil {
			return nil, 0, err
		}
		res, err := RunMT(core.Config{ThreadSlots: s, StandbyStations: true}, rc.Par.Text, m)
		if err != nil {
			return nil, 0, fmt.Errorf("doacross (%d slots): %w", s, err)
		}
		out = append(out, DoacrossCell{
			Slots:         s,
			Cycles:        res.Cycles,
			CyclesPerIter: float64(res.Cycles) / float64(n),
			Speedup:       float64(base.Cycles) / float64(res.Cycles),
		})
	}
	return out, base.Cycles, nil
}

// SWPAblationCell contrasts strategy B against the software-pipelining
// scheduler on Livermore Kernel 1 (§2.3.2's motivating comparison).
type SWPAblationCell struct {
	Slots         int
	Strategy      Strategy
	CyclesPerIter float64
	CodeSize      int // instructions per loop body, including NOP padding
}

// RunSWPAblation measures LK1 cycles per iteration for strategy B vs the
// NOP-padding software pipeliner at the given thread-slot counts.
func RunSWPAblation(n int, slots []int) ([]SWPAblationCell, error) {
	var out []SWPAblationCell
	for _, s := range slots {
		for _, strat := range []Strategy{ScheduleStrategyB, ScheduleSWP} {
			lv, err := BuildLivermore(LivermoreConfig{N: n, Threads: s, Strategy: strat, LoadStoreUnits: 1})
			if err != nil {
				return nil, err
			}
			prog := lv.Par
			if s == 1 {
				prog = lv.Seq
			}
			m, err := prog.NewMemory(64)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{ThreadSlots: s, LoadStoreUnits: 1, StandbyStations: true}, prog.Text, m)
			if err != nil {
				return nil, fmt.Errorf("swp ablation (%v, %d slots): %w", strat, s, err)
			}
			out = append(out, SWPAblationCell{
				Slots:         s,
				Strategy:      strat,
				CyclesPerIter: float64(res.Cycles) / float64(n),
				CodeSize:      len(prog.Text),
			})
		}
	}
	return out, nil
}

// StandbyDepthCell measures the effect of deepening the standby stations
// beyond the paper's single latch (toward Tomasulo-style reservation
// stations, which §2.1.1 explicitly contrasts them with).
type StandbyDepthCell struct {
	Depth   int
	Cycles  uint64
	Speedup float64 // vs the sequential baseline
}

// RunStandbyDepth sweeps the standby-station depth on the ray tracer.
func RunStandbyDepth(w RayTraceConfig, slots int, depths []int) ([]StandbyDepthCell, error) {
	rt, err := BuildRayTrace(w)
	if err != nil {
		return nil, err
	}
	mSeq, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	base, err := RunRISC(RISCConfig{LoadStoreUnits: 1}, rt.Seq.Text, mSeq)
	if err != nil {
		return nil, err
	}
	var out []StandbyDepthCell
	for _, d := range depths {
		m, err := rt.NewMemory(rt.Par, slots)
		if err != nil {
			return nil, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
			StandbyDepth:    d,
		}, rt.Par.Text, m)
		if err != nil {
			return nil, fmt.Errorf("standby depth %d: %w", d, err)
		}
		out = append(out, StandbyDepthCell{
			Depth:   d,
			Cycles:  res.Cycles,
			Speedup: float64(base.Cycles) / float64(res.Cycles),
		})
	}
	return out, nil
}

// UnrollCell measures loop unrolling (the paper's reference [3] transform)
// combined with static scheduling on Livermore Kernel 1.
type UnrollCell struct {
	Slots         int
	Unroll        int
	CyclesPerIter float64
}

// RunUnrollAblation sweeps the unroll factor under strategy A.
func RunUnrollAblation(n int, slots, unrolls []int) ([]UnrollCell, error) {
	var out []UnrollCell
	for _, s := range slots {
		for _, u := range unrolls {
			lv, err := BuildLivermore(LivermoreConfig{
				N: n, Threads: s, Strategy: ScheduleStrategyA, Unroll: u, LoadStoreUnits: 1,
			})
			if err != nil {
				return nil, err
			}
			prog := lv.Par
			if s == 1 {
				prog = lv.Seq
			}
			m, err := prog.NewMemory(64)
			if err != nil {
				return nil, err
			}
			res, err := RunMT(core.Config{ThreadSlots: s, LoadStoreUnits: 1, StandbyStations: true}, prog.Text, m)
			if err != nil {
				return nil, fmt.Errorf("unroll %d (%d slots): %w", u, s, err)
			}
			out = append(out, UnrollCell{Slots: s, Unroll: u, CyclesPerIter: float64(res.Cycles) / float64(n)})
		}
	}
	return out, nil
}

// BranchHidingCell measures how multithreading hides branch delays
// (§2.1.2: "the parallel multithreading scheme has a potential to hide
// the delay of branches"). The workload is maximally branchy: a bounded
// Collatz iteration per element, one data-dependent branch every few
// instructions.
type BranchHidingCell struct {
	Slots          int
	Cycles         uint64
	Speedup        float64 // vs the sequential baseline RISC
	PerThreadEff   float64 // Speedup / Slots
	TwoFetch       float64 // with a second shared fetch unit (§2.1.1's remedy)
	PrivateSpeedup float64 // with per-slot fetch units
}

// branchySrc is the Collatz step-count kernel. Thread i handles elements
// i, i+stride, ... and stores the step count for each.
const branchySrc = `
	.data
	.org 8
gthreadsbh: .word 1
gn:     .word 96
vals:   .space 96
steps:  .space 96
	.text
	ffork
	tid  r1
	lw   r2, gthreadsbh
	lw   r3, gn
	mov  r4, r1          ; element index
eloop:	slt  r5, r4, r3
	beqz r5, done
	la   r6, vals
	add  r6, r6, r4
	lw   r7, 0(r6)       ; x
	li   r8, 0           ; step count
cloop:	slti r5, r7, 2       ; x < 2 ?
	bnez r5, cdone
	slti r5, r8, 64      ; step cap
	beqz r5, cdone
	andi r5, r7, 1
	bnez r5, odd
	srai r7, r7, 1       ; x /= 2
	j    next
odd:	slli r5, r7, 1
	add  r7, r5, r7
	addi r7, r7, 1       ; x = 3x + 1
next:	addi r8, r8, 1
	j    cloop
cdone:	la   r6, steps
	add  r6, r6, r4
	sw   r8, 0(r6)
	add  r4, r4, r2
	j    eloop
done:	halt
`

// RunBranchHiding measures the branchy kernel across thread counts.
func RunBranchHiding(slots []int) ([]BranchHidingCell, uint64, error) {
	prog, err := Assemble(branchySrc)
	if err != nil {
		return nil, 0, err
	}
	mkMem := func(threads int) (*Memory, error) {
		m, err := prog.NewMemory(64)
		if err != nil {
			return nil, err
		}
		m.SetInt(prog.MustSymbol("gthreadsbh"), int64(threads))
		base := prog.MustSymbol("vals")
		for i := int64(0); i < 96; i++ {
			m.SetInt(base+i, 3+i*7%97)
		}
		return m, nil
	}

	// Sequential baseline (same program, one thread, on the RISC machine —
	// ffork degrades on a 1-thread basis, so build a fork-free variant by
	// running the MT machine? No: the RISC machine rejects ffork, so the
	// baseline uses the multithreaded pipeline with one slot *and* the
	// RISC machine via a forkless program below).
	seqProg, err := Assemble(strings.Replace(branchySrc, "\tffork\n", "", 1))
	if err != nil {
		return nil, 0, err
	}
	mSeq, err := seqProg.NewMemory(64)
	if err != nil {
		return nil, 0, err
	}
	mSeq.SetInt(seqProg.MustSymbol("gthreadsbh"), 1)
	base := seqProg.MustSymbol("vals")
	for i := int64(0); i < 96; i++ {
		mSeq.SetInt(base+i, 3+i*7%97)
	}
	seq, err := RunRISC(RISCConfig{}, seqProg.Text, mSeq)
	if err != nil {
		return nil, 0, err
	}

	var out []BranchHidingCell
	for _, s := range slots {
		cell := BranchHidingCell{Slots: s}
		for _, variant := range []struct {
			fetchUnits int
			private    bool
		}{{1, false}, {2, false}, {0, true}} {
			m, err := mkMem(s)
			if err != nil {
				return nil, 0, err
			}
			res, err := RunMT(core.Config{
				ThreadSlots:     s,
				StandbyStations: true,
				FetchUnits:      variant.fetchUnits,
				PrivateICache:   variant.private,
			}, prog.Text, m)
			if err != nil {
				return nil, 0, fmt.Errorf("branch hiding (%d slots): %w", s, err)
			}
			sp := float64(seq.Cycles) / float64(res.Cycles)
			switch {
			case variant.private:
				cell.PrivateSpeedup = sp
			case variant.fetchUnits == 2:
				cell.TwoFetch = sp
			default:
				cell.Cycles = res.Cycles
				cell.Speedup = sp
				cell.PerThreadEff = sp / float64(s)
			}
		}
		out = append(out, cell)
	}
	return out, seq.Cycles, nil
}
