package hirata

// Benchmarks for the extension experiments: the doacross recurrence, the
// software-pipelining contrast, the single-issue precursor comparison, and
// trace-driven replay.

import (
	"fmt"
	"testing"

	"hirata/internal/core"
)

// BenchmarkDoacross measures the queue-register doacross loop (LK5).
func BenchmarkDoacross(b *testing.B) {
	const n = 150
	rc, err := BuildRecurrence(RecurrenceConfig{N: n})
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("S%d", slots), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := rc.NewMemory(rc.Par, slots)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunMT(core.Config{ThreadSlots: slots, StandbyStations: true}, rc.Par.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(n), "cycles/iter")
		})
	}
}

// BenchmarkSWPAblation contrasts strategy B with NOP-padding software
// pipelining on LK1 (§2.3.2).
func BenchmarkSWPAblation(b *testing.B) {
	const n = 120
	for _, strat := range []Strategy{ScheduleStrategyB, ScheduleSWP} {
		b.Run(fmt.Sprintf("%s/S8", strat), func(b *testing.B) {
			lv, err := BuildLivermore(LivermoreConfig{N: n, Threads: 8, Strategy: strat, LoadStoreUnits: 1})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := lv.Par.NewMemory(64)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunMT(core.Config{ThreadSlots: 8, LoadStoreUnits: 1, StandbyStations: true}, lv.Par.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(n), "cycles/iter")
		})
	}
}

// BenchmarkIssueBandwidth contrasts simultaneous issue with the §4
// single-issue precursors.
func BenchmarkIssueBandwidth(b *testing.B) {
	rt := benchSetup(b)
	for _, cap := range []int{0, 1} {
		name := "simultaneous"
		if cap == 1 {
			name = "single-issue"
		}
		b.Run(name+"/S8", func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := rt.NewMemory(rt.Par, 8)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunMT(core.Config{
					ThreadSlots:      8,
					LoadStoreUnits:   2,
					StandbyStations:  true,
					MaxIssuePerCycle: cap,
				}, rt.Par.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(benchBaseline[2])/float64(cycles), "speedup")
		})
	}
}

// BenchmarkTraceReplay measures trace-driven multiprogrammed throughput.
func BenchmarkTraceReplay(b *testing.B) {
	rt := benchSetup(b)
	m, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := RecordTrace(rt.Seq.Text, m)
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{2, 8} {
		b.Run(fmt.Sprintf("S%d", slots), func(b *testing.B) {
			traces := make([][]TraceRecord, slots)
			for i := range traces {
				traces[i] = recs
			}
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ReplayTraces(core.Config{
					ThreadSlots:     slots,
					LoadStoreUnits:  2,
					StandbyStations: true,
				}, traces)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkRadiosity measures the MinC-compiled radiosity gather.
func BenchmarkRadiosity(b *testing.B) {
	rd, err := BuildRadiosity(RadiosityConfig{Patches: 20, Sweeps: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{1, 8} {
		b.Run(fmt.Sprintf("S%d", slots), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := rd.NewMemory(slots)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunMT(core.Config{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true}, rd.Prog.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkBranchHiding measures the branchy workload with shared vs
// private fetch units.
func BenchmarkBranchHiding(b *testing.B) {
	for _, private := range []bool{false, true} {
		name := "shared-fetch"
		if private {
			name = "private-fetch"
		}
		b.Run(name+"/S8", func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				cells, _, err := RunBranchHiding([]int{8})
				if err != nil {
					b.Fatal(err)
				}
				if private {
					sp = cells[0].PrivateSpeedup
				} else {
					sp = cells[0].Speedup
				}
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}
