// Package hirata is a library-level reproduction of Hirata et al., "An
// Elementary Processor Architecture with Simultaneous Instruction Issuing
// from Multiple Threads" (ISCA 1992) — one of the earliest simultaneous
// multithreading (SMT) designs.
//
// The package bundles:
//
//   - a cycle-level simulator of the paper's multithreaded processor
//     (thread slots, shared functional units, scoreboarding, standby
//     stations, rotating-priority instruction schedule units, queue
//     registers, fast-fork/kill/priority-store, context frames with
//     data-absence traps),
//   - the baseline superpipelined RISC machine the paper compares against,
//   - an assembler for the machine's RISC instruction set,
//   - MinC, a small C-like kernel-language compiler targeting the ISA,
//   - the paper's workloads (a synthetic ray-tracing kernel, Livermore
//     Kernel 1, a linked-list while loop, a Livermore Kernel 5 doacross
//     recurrence, and a MinC-compiled radiosity gather), and
//   - runners that regenerate every table of the paper's evaluation
//     (Tables 2-5) plus its in-text experiments and a dozen extensions.
//
// Quick start:
//
//	prog, err := hirata.Assemble(src)
//	m, err := prog.NewMemory(1024)
//	res, err := hirata.RunMT(hirata.MTConfig{ThreadSlots: 4, StandbyStations: true}, prog.Text, m)
//	fmt.Println(res.Cycles, res.IPC())
//
// See the examples/ directory for runnable programs and cmd/hirata-bench
// for the paper-reproduction harness.
package hirata

import (
	"fmt"
	"io"
	"strings"

	"hirata/internal/asm"
	"hirata/internal/buildinfo"
	"hirata/internal/core"
	"hirata/internal/exec"
	"hirata/internal/hostobs"
	"hirata/internal/isa"
	"hirata/internal/lint"
	"hirata/internal/mem"
	"hirata/internal/minc"
	"hirata/internal/obs"
	"hirata/internal/risc"
	"hirata/internal/sched"
	"hirata/internal/sweep"
	"hirata/internal/trace"
	"hirata/internal/workload"
)

// Re-exported configuration and result types. The aliases expose the full
// simulator APIs as this module's public surface.
type (
	// MTConfig configures the multithreaded processor (thread slots,
	// load/store units, standby stations, rotation, issue width, ...).
	MTConfig = core.Config
	// MTResult reports a multithreaded run (cycles, per-unit utilization,
	// per-slot stalls).
	MTResult = core.Result
	// RISCConfig configures the baseline superpipelined RISC machine.
	RISCConfig = risc.Config
	// RISCResult reports a baseline run.
	RISCResult = risc.Result
	// Program is an assembled program: text, data image, symbols.
	Program = asm.Program
	// Memory is the word-addressed data memory.
	Memory = mem.Memory
	// Instruction is one decoded machine instruction.
	Instruction = isa.Instruction
	// UnitClass identifies a functional-unit class.
	UnitClass = isa.UnitClass
	// Strategy selects a static code scheduling algorithm (§2.3.2).
	Strategy = sched.Strategy
)

// Static scheduling strategies (Table 4), plus the software-pipelining
// contrast of §2.3.2.
const (
	ScheduleNone      = sched.None
	ScheduleStrategyA = sched.StrategyA
	ScheduleStrategyB = sched.StrategyB
	ScheduleSWP       = sched.StrategySWP
)

// Static verification (see internal/lint and docs/LINT.md).
type (
	// LintDiagnostic is one finding of the static program verifier.
	LintDiagnostic = lint.Diagnostic
	// LintConfig tunes the static verifier (thread entry points, queue
	// depth).
	LintConfig = lint.Config
	// LintCode identifies a diagnostic kind (L001..L017).
	LintCode = lint.Code
	// LintBounds is the static lower-bound report (lint.ComputeBounds).
	LintBounds = lint.Bounds
	// LintMachine is the machine shape the static bound is computed
	// against.
	LintMachine = lint.Machine
)

// Lint statically verifies an assembled program: CFG construction per
// thread entry point, must-defined register dataflow, queue-register ring
// protocol checks, whole-program checks (unreachable code, bad branch
// targets, guaranteed queue deadlocks, thread-control misuse), and the
// cross-thread abstract interpretation (data races, address safety, dead
// stores, statically decided branches). An empty result means the program
// is clean.
func Lint(p *Program) []LintDiagnostic {
	return lint.AnalyzeProgram(p, LintConfig{InterThread: true})
}

// LintWithConfig is Lint with explicit entry points and queue depth.
func LintWithConfig(p *Program, cfg LintConfig) []LintDiagnostic {
	return lint.AnalyzeProgram(p, cfg)
}

// LintText verifies a bare instruction sequence (no source positions).
func LintText(text []Instruction, cfg LintConfig) []LintDiagnostic {
	return lint.AnalyzeText(text, cfg)
}

// StaticBounds computes the static lower bound on execution cycles for a
// program text on the given machine configuration and thread start PCs
// (nil means one thread at PC 0). The bound is a certificate: no run of
// the program on that machine finishes in fewer cycles, so the gap to a
// measured Result.Cycles is the schedule-quality headroom.
func StaticBounds(cfg MTConfig, text []Instruction, startPCs ...int64) LintBounds {
	eff := cfg.Effective()
	m := LintMachine{
		ThreadSlots:      eff.ThreadSlots,
		IssueWidth:       eff.IssueWidth,
		MaxIssuePerCycle: eff.MaxIssuePerCycle,
	}
	for u := isa.UnitClass(1); int(u) <= isa.NumUnitClasses; u++ {
		m.Units[u] = eff.UnitCount(u)
	}
	entries := make([]int, 0, len(startPCs))
	for _, pc := range startPCs {
		entries = append(entries, int(pc))
	}
	return lint.ComputeBounds(text, entries, m)
}

// lintConfigForRun maps a run's machine configuration and explicit start
// PCs onto the verifier's configuration, including the cross-thread
// analysis sized to the machine (thread slots, memory words).
func lintConfigForRun(cfg MTConfig, m *Memory, startPCs []int64) LintConfig {
	lc := LintConfig{
		QueueDepth:  cfg.QueueDepth,
		ThreadSlots: cfg.ThreadSlots,
		InterThread: true,
	}
	if m != nil {
		lc.MemWords = m.Size()
	}
	for _, pc := range startPCs {
		lc.Entries = append(lc.Entries, int(pc))
	}
	return lc
}

// strictVerify runs the verifier over text and returns an error carrying
// every finding, for the StrictVerify run modes.
func strictVerify(text []Instruction, cfg LintConfig) error {
	ds := lint.AnalyzeText(text, cfg)
	if len(ds) == 0 {
		return nil
	}
	msgs := make([]string, len(ds))
	for i, d := range ds {
		msgs[i] = d.String()
	}
	return fmt.Errorf("hirata: strict verify found %d issue(s):\n  %s",
		len(ds), strings.Join(msgs, "\n  "))
}

// Assemble translates assembly source into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders instruction text as assembly source.
func Disassemble(text []Instruction) string { return asm.Disassemble(text) }

// NewMemory allocates a zeroed word-addressed memory.
func NewMemory(words int) *Memory { return mem.NewMemory(words) }

// NewMemoryWithRemote allocates a memory whose tail addresses model remote
// memory in a distributed shared memory system.
func NewMemoryWithRemote(words int, remoteBase int64, latency int) *Memory {
	return mem.NewMemoryWithRemote(words, remoteBase, latency)
}

// RunMT simulates a program on the multithreaded processor. Threads start
// at the given program counters (default: one thread at 0). When a run
// ledger is attached (SetRunLedger), the completed run is recorded.
func RunMT(cfg MTConfig, text []Instruction, m *Memory, startPCs ...int64) (MTResult, error) {
	if cfg.StrictVerify {
		if err := strictVerify(text, lintConfigForRun(cfg, m, startPCs)); err != nil {
			return MTResult{}, err
		}
	}
	pend, led, tag := recordBegin(cfg, text, m, startPCs)
	p, err := core.New(cfg, text, m)
	if err != nil {
		return MTResult{}, err
	}
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			return MTResult{}, err
		}
	}
	res, err := p.Run()
	recordCommit(led, pend, tag, res, err, nil)
	return res, err
}

// RunMTTraced is RunMT with a cycle-by-cycle pipeline event trace written
// to w (issues, schedule-unit selections, redirects, binds, traps,
// priority rotations, thread ends).
func RunMTTraced(cfg MTConfig, text []Instruction, m *Memory, w io.Writer, startPCs ...int64) (MTResult, error) {
	p, err := core.New(cfg, text, m)
	if err != nil {
		return MTResult{}, err
	}
	p.Observe(&core.TextTracer{W: w})
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			return MTResult{}, err
		}
	}
	return p.Run()
}

// Observability (see internal/obs and docs/OBSERVABILITY.md).
type (
	// Observer receives the simulator's pipeline event stream.
	Observer = core.Observer
	// MultiObserver fans events out to several observers.
	MultiObserver = core.MultiObserver
	// Collector records events into a bounded ring and aggregates a per-PC
	// hotspot profile and interval metrics; it exports Chrome Trace Event
	// JSON (Perfetto), Prometheus text format, and annotated profiles.
	Collector = obs.Collector
	// CollectorOptions configure a Collector (ring capacity, metrics
	// interval, stall-event retention).
	CollectorOptions = obs.Options
	// Profile is a per-PC hotspot profile extracted from a Collector.
	Profile = obs.Profile
	// MetricsSample is one closed interval of the metrics time series.
	MetricsSample = obs.Sample
	// TextTracer prints pipeline events to a writer, one line per event.
	TextTracer = core.TextTracer
	// CPIStack is the per-slot cycle-accounting result: every (slot, cycle)
	// classified into a hierarchical CPI bucket.
	CPIStack = obs.CPIStack
	// CritPath is the run's dynamic critical path with a per-cause
	// breakdown and per-instruction attribution.
	CritPath = obs.CritPath
	// WhatIfScenario is one parsed what-if question ("+1 alu", "+1 slot").
	WhatIfScenario = obs.Scenario
	// WhatIfEstimate bounds a scenario's effect as a cycle interval.
	WhatIfEstimate = obs.Estimate
)

// ParseWhatIfScenario parses a what-if scenario string such as "+1 alu",
// "+1 ls", "+1 slot" or "+1 standby".
func ParseWhatIfScenario(s string) (WhatIfScenario, error) { return obs.ParseScenario(s) }

// FormatWhatIfEstimates renders what-if estimates as an aligned text block.
func FormatWhatIfEstimates(ests []WhatIfEstimate) string { return obs.FormatEstimates(ests) }

// NewCollector builds an event collector for a machine of the given shape.
func NewCollector(cfg MTConfig, opt CollectorOptions) *Collector {
	return obs.NewCollector(cfg, opt)
}

// ServeObservability starts an HTTP server exposing a collector's /metrics,
// /metrics.json, /trace.json, /profile and /debug/pprof endpoints. It
// returns the bound address (useful with ":0") and a shutdown function.
func ServeObservability(addr string, c *Collector, prog *Program) (string, func() error, error) {
	return obs.Serve(addr, c, prog)
}

// RunMTObserved is RunMT with one or more observers attached to the
// pipeline event stream (a *Collector, a *core.TextTracer, or any custom
// Observer). Collectors passed here are finalized against the run result
// before returning.
func RunMTObserved(cfg MTConfig, text []Instruction, m *Memory, observers []Observer, startPCs ...int64) (MTResult, error) {
	pend, led, tag := recordBegin(cfg, text, m, startPCs)
	p, err := core.New(cfg, text, m)
	if err != nil {
		return MTResult{}, err
	}
	for _, o := range observers {
		p.Observe(o)
	}
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			return MTResult{}, err
		}
	}
	res, err := p.Run()
	if err == nil {
		for _, o := range observers {
			if c, ok := o.(*Collector); ok {
				c.Finalize(res)
			}
		}
	}
	recordCommit(led, pend, tag, res, err, exactCPIDecorator(observers))
	return res, err
}

// Host-level self-observability (see internal/hostobs and the "Host-level
// observability" section of docs/OBSERVABILITY.md): the simulator watching
// its own execution rather than the simulated machine's.
type (
	// HostProfiler samples the cycle loop's wall time per phase and its
	// structure-touch census; attach with RunMTHostProfiled.
	HostProfiler = hostobs.Profiler
	// HostProfilerOptions configure sampling rate and trace retention.
	HostProfilerOptions = hostobs.Options
	// HostPhaseProfile is the aggregated per-phase wall-time breakdown.
	HostPhaseProfile = hostobs.PhaseProfile
	// HostOpportunityReport quantifies scanned-but-unchanged structure
	// visits — the work an event-driven core (ROADMAP item 2) would skip.
	HostOpportunityReport = hostobs.OpportunityReport
	// HostExport bundles profiler and sweep recorder behind /hostmetrics.
	HostExport = hostobs.Export
	// HostSource serves a Prometheus exposition on /hostmetrics.
	HostSource = obs.HostSource
	// SweepRecorder records per-worker sweep timelines (a SweepTelemetry).
	SweepRecorder = hostobs.SweepRecorder
	// SweepTelemetry observes experiment sweeps (see SetSweepTelemetry).
	SweepTelemetry = sweep.Telemetry
)

// NewHostProfiler builds a cycle-loop profiler. The zero HostProfilerOptions
// selects 1-in-32 step sampling and a 4096-sample trace ring.
func NewHostProfiler(opt HostProfilerOptions) *HostProfiler { return hostobs.New(opt) }

// NewSweepRecorder builds a sweep telemetry recorder for SetSweepTelemetry.
func NewSweepRecorder() *SweepRecorder { return hostobs.NewSweepRecorder() }

// RunMTHostProfiled is RunMT with a host profiler attached. Unlike pipeline
// observers, the profiler leaves quiescent-cycle skipping armed (it records
// the jumps instead), so a profiled run produces an identical MTResult.
func RunMTHostProfiled(cfg MTConfig, text []Instruction, m *Memory, prof *HostProfiler, startPCs ...int64) (MTResult, error) {
	if cfg.StrictVerify {
		if err := strictVerify(text, lintConfigForRun(cfg, m, startPCs)); err != nil {
			return MTResult{}, err
		}
	}
	pend, led, tag := recordBegin(cfg, text, m, startPCs)
	p, err := core.New(cfg, text, m)
	if err != nil {
		return MTResult{}, err
	}
	if prof != nil {
		p.SetHostProbe(prof)
	}
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			return MTResult{}, err
		}
	}
	res, err := p.Run()
	recordCommit(led, pend, tag, res, err, hostDigestDecorator(prof))
	return res, err
}

// RunMTProfiledObserved attaches pipeline observers and a host profiler to
// the same run. Note that pipeline observers disable quiescent-cycle
// skipping, so the host profile of such a run shows the cycle loop scanning
// quiescent cycles the unobserved simulator would have jumped over.
func RunMTProfiledObserved(cfg MTConfig, text []Instruction, m *Memory, observers []Observer, prof *HostProfiler, startPCs ...int64) (MTResult, error) {
	pend, led, tag := recordBegin(cfg, text, m, startPCs)
	p, err := core.New(cfg, text, m)
	if err != nil {
		return MTResult{}, err
	}
	for _, o := range observers {
		p.Observe(o)
	}
	if prof != nil {
		p.SetHostProbe(prof)
	}
	for _, pc := range startPCs {
		if err := p.StartThread(pc); err != nil {
			return MTResult{}, err
		}
	}
	res, err := p.Run()
	if err == nil {
		for _, o := range observers {
			if c, ok := o.(*Collector); ok {
				c.Finalize(res)
			}
		}
	}
	recordCommit(led, pend, tag, res, err,
		chainDecorators(exactCPIDecorator(observers), hostDigestDecorator(prof)))
	return res, err
}

// WriteHostTrace writes the host-side Chrome Trace Event JSON (cycle-loop
// phase slices plus sweep-worker timelines; load in ui.perfetto.dev).
// Either source may be nil.
func WriteHostTrace(w io.Writer, prof *HostProfiler, rec *SweepRecorder) error {
	return hostobs.WriteHostTrace(w, prof, rec)
}

// ServeObservabilityWithHost is ServeObservability plus a /hostmetrics
// endpoint backed by host (e.g. a HostExport or *HostProfiler); a nil host
// serves 503 on that route.
func ServeObservabilityWithHost(addr string, c *Collector, prog *Program, host HostSource) (string, func() error, error) {
	return obs.ServeWithHost(addr, c, prog, host)
}

// Version reports the binary's build identity (VCS revision, dirty flag, Go
// version) as embedded by the Go toolchain; "unknown" outside a VCS build.
func Version() string { return buildinfo.Get().String() }

// RunRISC simulates a program on the baseline RISC machine.
func RunRISC(cfg RISCConfig, text []Instruction, m *Memory) (RISCResult, error) {
	if cfg.StrictVerify {
		if err := strictVerify(text, LintConfig{}); err != nil {
			return RISCResult{}, err
		}
	}
	mc, err := risc.New(cfg, text, m)
	if err != nil {
		return RISCResult{}, err
	}
	return mc.Run()
}

// Interpret runs a program on the functional (untimed) golden model and
// returns the number of instructions executed.
func Interpret(text []Instruction, m *Memory) (uint64, error) {
	ip := exec.NewInterp(text, m)
	if err := ip.Run(); err != nil {
		return ip.Steps(), err
	}
	return ip.Steps(), nil
}

// ScheduleBlock applies a static code scheduling strategy to a branch-free
// basic block (§2.3.2).
func ScheduleBlock(block []Instruction, s Strategy, threads, lsUnits int) ([]Instruction, error) {
	return sched.Schedule(block, s, sched.Options{Threads: threads, LoadStoreUnits: lsUnits})
}

// Trace types: the paper's §3 methodology drives the simulator with traced
// instruction sequences.
type (
	// TraceRecord is one dynamically executed instruction.
	TraceRecord = trace.Record
	// TraceMix summarises a trace's dynamic instruction mix.
	TraceMix = trace.Mix
	// TraceInput feeds one record into trace-driven replay.
	TraceInput = core.TraceInput
)

// RecordTrace runs a single-threaded program on the functional model and
// returns its dynamic instruction trace.
func RecordTrace(text []Instruction, m *Memory) ([]TraceRecord, error) {
	return trace.RecordProgram(text, m, 0)
}

// TraceStats computes the dynamic instruction mix of a trace.
func TraceStats(recs []TraceRecord) TraceMix { return trace.Stats(recs) }

// ReplayTraces runs trace-driven simulation: thread i replays traces[i].
func ReplayTraces(cfg MTConfig, traces [][]TraceRecord) (MTResult, error) {
	in := make([][]core.TraceInput, len(traces))
	for i, tr := range traces {
		in[i] = make([]core.TraceInput, len(tr))
		for k, r := range tr {
			in[i][k] = core.TraceInput{Ins: r.Ins, Addr: r.Addr}
		}
	}
	p, err := core.NewTraceDriven(cfg, in)
	if err != nil {
		return MTResult{}, err
	}
	return p.Run()
}

// Workload construction (see internal/workload for details).
type (
	// RayTraceConfig parameterises the synthetic ray tracer (§3.2).
	RayTraceConfig = workload.RayTraceConfig
	// RayTrace bundles its sequential and parallel programs.
	RayTrace = workload.RayTrace
	// LivermoreConfig parameterises Livermore Kernel 1 (§3.4).
	LivermoreConfig = workload.LivermoreConfig
	// Livermore bundles its programs.
	Livermore = workload.Livermore
	// LinkedListConfig parameterises the while-loop workload (§3.5).
	LinkedListConfig = workload.LinkedListConfig
	// LinkedList bundles its programs.
	LinkedList = workload.LinkedList
	// RecurrenceConfig parameterises the doacross workload (Livermore
	// Kernel 5, communicated through queue registers; §2.3.1).
	RecurrenceConfig = workload.RecurrenceConfig
	// Recurrence bundles its programs.
	Recurrence = workload.Recurrence
	// RadiosityConfig parameterises the MinC-compiled radiosity gather
	// (the paper's second named graphics algorithm).
	RadiosityConfig = workload.RadiosityConfig
	// Radiosity bundles its compiled program and scene.
	Radiosity = workload.Radiosity
)

// BuildRayTrace generates the synthetic ray-tracing workload.
func BuildRayTrace(cfg RayTraceConfig) (*RayTrace, error) { return workload.BuildRayTrace(cfg) }

// BuildLivermore generates the Livermore Kernel 1 workload.
func BuildLivermore(cfg LivermoreConfig) (*Livermore, error) { return workload.BuildLivermore(cfg) }

// BuildLinkedList generates the linked-list while-loop workload.
func BuildLinkedList(cfg LinkedListConfig) (*LinkedList, error) { return workload.BuildLinkedList(cfg) }

// BuildRecurrence generates the doacross (Livermore Kernel 5) workload.
func BuildRecurrence(cfg RecurrenceConfig) (*Recurrence, error) { return workload.BuildRecurrence(cfg) }

// BuildRadiosity generates and compiles the radiosity workload.
func BuildRadiosity(cfg RadiosityConfig) (*Radiosity, error) { return workload.BuildRadiosity(cfg) }

// CompileMinC compiles a MinC (C-like kernel language) source file into an
// assembled Program; see docs/MINC.md and cmd/hirata-cc.
func CompileMinC(src string) (*Program, error) { return minc.Compile(src) }

// SetMinCThreads stores the thread count where a compiled MinC program's
// nthreads() intrinsic reads it.
func SetMinCThreads(p *Program, m *Memory, threads int) { minc.SetThreads(p, m, threads) }
