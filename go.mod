module hirata

go 1.22
