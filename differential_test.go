package hirata

// Differential proofs for the two performance layers added by the sweep
// engine work (docs/PERFORMANCE.md):
//
//   - quiescent-cycle skipping must be invisible: every workload produces a
//     bit-identical Result and final memory image with the skip disabled
//     (MTConfig.DisableCycleSkip) and enabled;
//   - the parallel sweep engine must be invisible: experiment runners
//     produce byte-identical output at any parallelism.

import (
	"bytes"
	"reflect"
	"testing"
)

// memWords snapshots the full memory image.
func memWords(t *testing.T, m *Memory) []uint64 {
	t.Helper()
	out := make([]uint64, m.Size())
	for a := int64(0); a < m.Size(); a++ {
		v, err := m.Load(a)
		if err != nil {
			t.Fatal(err)
		}
		out[a] = v
	}
	return out
}

// runSkipDifferential runs the same program twice — cycle skip disabled,
// then enabled — and requires identical Results and memory images.
func runSkipDifferential(t *testing.T, cfg MTConfig, text []Instruction, mkMem func() (*Memory, error), startPCs ...int64) {
	t.Helper()
	var results [2]MTResult
	var mems [2][]uint64
	for i, disable := range []bool{true, false} {
		c := cfg
		c.DisableCycleSkip = disable
		m, err := mkMem()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMT(c, text, m, startPCs...)
		if err != nil {
			t.Fatalf("DisableCycleSkip=%v: %v", disable, err)
		}
		results[i] = res
		mems[i] = memWords(t, m)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("Result differs with cycle skip:\n  off: %+v\n  on:  %+v", results[0], results[1])
	}
	if !reflect.DeepEqual(mems[0], mems[1]) {
		t.Error("final memory image differs with cycle skip")
	}
}

func TestCycleSkipDifferentialFib(t *testing.T) {
	prog := loadProgram(t, "fib.s")
	runSkipDifferential(t, MTConfig{ThreadSlots: 1, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(128) })
}

func TestCycleSkipDifferentialSort(t *testing.T) {
	prog := loadProgram(t, "sort.s")
	runSkipDifferential(t, MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(64) })
}

func TestCycleSkipDifferentialRadiosity(t *testing.T) {
	rd, err := BuildRadiosity(RadiosityConfig{Patches: 12, Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	runSkipDifferential(t, MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true},
		rd.Prog.Text, func() (*Memory, error) { return rd.NewMemory(8) })
}

func TestCycleSkipDifferentialRayTrace(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 16, Spheres: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{2, 8} {
		runSkipDifferential(t, MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true},
			rt.Par.Text, func() (*Memory, error) { return rt.NewMemory(rt.Par, slots) })
	}
}

// TestCycleSkipDifferentialConcurrentMT is the case the skip is built for:
// high remote latency with more context frames than thread slots, so long
// quiescent stretches alternate with data-absence context switches.
func TestCycleSkipDifferentialConcurrentMT(t *testing.T) {
	prog, err := Assemble(concurrentMTSrc)
	if err != nil {
		t.Fatal(err)
	}
	mkMem := func() (*Memory, error) {
		m := NewMemoryWithRemote(8192, 4096, 300)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%97)
		}
		return m, nil
	}
	// Four threads on one slot with four frames (switching on), and the
	// stall-through variant with switching suppressed.
	for _, suppress := range []bool{false, true} {
		runSkipDifferential(t, MTConfig{
			ThreadSlots:      1,
			ContextFrames:    4,
			StandbyStations:  true,
			ExplicitRotation: suppress,
		}, prog.Text, mkMem, 0, 0, 0, 0)
	}
}

func TestCycleSkipDifferentialTraceReplay(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 8, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := RecordTrace(rt.Seq.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]TraceRecord{recs, recs, recs, recs}
	var results [2]MTResult
	for i, disable := range []bool{true, false} {
		res, err := ReplayTraces(MTConfig{
			ThreadSlots:      4,
			LoadStoreUnits:   2,
			StandbyStations:  true,
			DisableCycleSkip: disable,
		}, traces)
		if err != nil {
			t.Fatalf("DisableCycleSkip=%v: %v", disable, err)
		}
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("trace replay Result differs with cycle skip:\n  off: %+v\n  on:  %+v", results[0], results[1])
	}
}

// TestParallelSweepByteIdentical proves the sweep engine is deterministic:
// the full paper-reproduction report serialises byte-identically whether
// the cells run sequentially or concurrently.
func TestParallelSweepByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	w := RayTraceConfig{Rays: 12, Spheres: 4}
	var out [2][]byte
	for i, workers := range []int{1, 8} {
		SetParallelism(workers)
		rep, err := RunFullReport(w, 40, 24)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = js
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("report JSON differs between sequential and parallel sweeps")
	}
}

func TestParallelMultiprogramIdentical(t *testing.T) {
	defer SetParallelism(0)
	var out [2][]MultiprogramCell
	for i, workers := range []int{1, 8} {
		SetParallelism(workers)
		cells, err := RunMultiprogram([]int{2, 4})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		out[i] = cells
	}
	if !reflect.DeepEqual(out[0], out[1]) {
		t.Errorf("multiprogram cells differ:\n  seq: %+v\n  par: %+v", out[0], out[1])
	}
}
