package hirata

// Differential proofs for the performance layers described in
// docs/PERFORMANCE.md:
//
//   - quiescent-cycle skipping must be invisible: every workload produces a
//     bit-identical Result and final memory image with the skip disabled
//     (MTConfig.DisableCycleSkip) and enabled;
//   - the event-driven cycle core must be invisible: the same workloads,
//     plus every MinC program shipped under examples/programs, produce
//     bit-identical Results, memory images and metrics reports against the
//     legacy scan-everything loop (MTConfig.DisableEventCore);
//   - the parallel sweep engine must be invisible: experiment runners
//     produce byte-identical output at any parallelism.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// memWords snapshots the full memory image.
func memWords(t *testing.T, m *Memory) []uint64 {
	t.Helper()
	out := make([]uint64, m.Size())
	for a := int64(0); a < m.Size(); a++ {
		v, err := m.Load(a)
		if err != nil {
			t.Fatal(err)
		}
		out[a] = v
	}
	return out
}

// runSkipDifferential runs the same program twice — cycle skip disabled,
// then enabled — and requires identical Results and memory images.
func runSkipDifferential(t *testing.T, cfg MTConfig, text []Instruction, mkMem func() (*Memory, error), startPCs ...int64) {
	t.Helper()
	var results [2]MTResult
	var mems [2][]uint64
	for i, disable := range []bool{true, false} {
		c := cfg
		c.DisableCycleSkip = disable
		m, err := mkMem()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMT(c, text, m, startPCs...)
		if err != nil {
			t.Fatalf("DisableCycleSkip=%v: %v", disable, err)
		}
		results[i] = res
		mems[i] = memWords(t, m)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("Result differs with cycle skip:\n  off: %+v\n  on:  %+v", results[0], results[1])
	}
	if !reflect.DeepEqual(mems[0], mems[1]) {
		t.Error("final memory image differs with cycle skip")
	}
}

// runEventCoreDifferential runs the same program twice — once on the legacy
// scan-everything cycle loop (DisableEventCore) and once on the event-driven
// core — and requires byte-identical Results (via their JSON encodings, so a
// new Result field cannot silently escape the comparison) and identical
// memory images.
func runEventCoreDifferential(t *testing.T, cfg MTConfig, text []Instruction, mkMem func() (*Memory, error), startPCs ...int64) {
	t.Helper()
	var results [2]MTResult
	var blobs [2][]byte
	var mems [2][]uint64
	for i, disable := range []bool{true, false} {
		c := cfg
		c.DisableEventCore = disable
		m, err := mkMem()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMT(c, text, m, startPCs...)
		if err != nil {
			t.Fatalf("DisableEventCore=%v: %v", disable, err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
		blobs[i] = js
		mems[i] = memWords(t, m)
	}
	if !bytes.Equal(blobs[0], blobs[1]) || !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("Result differs between cores:\n  legacy: %+v\n  event:  %+v", results[0], results[1])
	}
	if !reflect.DeepEqual(mems[0], mems[1]) {
		t.Error("final memory image differs between cores")
	}
}

func TestCycleSkipDifferentialFib(t *testing.T) {
	prog := loadProgram(t, "fib.s")
	runSkipDifferential(t, MTConfig{ThreadSlots: 1, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(128) })
}

func TestCycleSkipDifferentialSort(t *testing.T) {
	prog := loadProgram(t, "sort.s")
	runSkipDifferential(t, MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(64) })
}

func TestCycleSkipDifferentialRadiosity(t *testing.T) {
	rd, err := BuildRadiosity(RadiosityConfig{Patches: 12, Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	runSkipDifferential(t, MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true},
		rd.Prog.Text, func() (*Memory, error) { return rd.NewMemory(8) })
}

func TestCycleSkipDifferentialRayTrace(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 16, Spheres: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{2, 8} {
		runSkipDifferential(t, MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true},
			rt.Par.Text, func() (*Memory, error) { return rt.NewMemory(rt.Par, slots) })
	}
}

// TestCycleSkipDifferentialConcurrentMT is the case the skip is built for:
// high remote latency with more context frames than thread slots, so long
// quiescent stretches alternate with data-absence context switches.
func TestCycleSkipDifferentialConcurrentMT(t *testing.T) {
	prog, err := Assemble(concurrentMTSrc)
	if err != nil {
		t.Fatal(err)
	}
	mkMem := func() (*Memory, error) {
		m := NewMemoryWithRemote(8192, 4096, 300)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%97)
		}
		return m, nil
	}
	// Four threads on one slot with four frames (switching on), and the
	// stall-through variant with switching suppressed.
	for _, suppress := range []bool{false, true} {
		runSkipDifferential(t, MTConfig{
			ThreadSlots:      1,
			ContextFrames:    4,
			StandbyStations:  true,
			ExplicitRotation: suppress,
		}, prog.Text, mkMem, 0, 0, 0, 0)
	}
}

func TestCycleSkipDifferentialTraceReplay(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 8, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := RecordTrace(rt.Seq.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]TraceRecord{recs, recs, recs, recs}
	var results [2]MTResult
	for i, disable := range []bool{true, false} {
		res, err := ReplayTraces(MTConfig{
			ThreadSlots:      4,
			LoadStoreUnits:   2,
			StandbyStations:  true,
			DisableCycleSkip: disable,
		}, traces)
		if err != nil {
			t.Fatalf("DisableCycleSkip=%v: %v", disable, err)
		}
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("trace replay Result differs with cycle skip:\n  off: %+v\n  on:  %+v", results[0], results[1])
	}
}

// Event-core differentials: the same workload matrix as the cycle-skip
// proofs above, replayed against the legacy scan loop. The two cores share
// no phase implementations for scheduling, fetch gating or quiescent
// horizons, so agreement here is a real cross-check, not a tautology.

func TestEventCoreDifferentialFib(t *testing.T) {
	prog := loadProgram(t, "fib.s")
	runEventCoreDifferential(t, MTConfig{ThreadSlots: 1, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(128) })
}

func TestEventCoreDifferentialSort(t *testing.T) {
	prog := loadProgram(t, "sort.s")
	runEventCoreDifferential(t, MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true},
		prog.Text, func() (*Memory, error) { return prog.NewMemory(64) })
}

func TestEventCoreDifferentialRadiosity(t *testing.T) {
	rd, err := BuildRadiosity(RadiosityConfig{Patches: 12, Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	runEventCoreDifferential(t, MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true},
		rd.Prog.Text, func() (*Memory, error) { return rd.NewMemory(8) })
}

func TestEventCoreDifferentialRayTrace(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 16, Spheres: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{2, 8} {
		runEventCoreDifferential(t, MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true},
			rt.Par.Text, func() (*Memory, error) { return rt.NewMemory(rt.Par, slots) })
	}
}

// TestEventCoreDifferentialIssueWidths covers the machine shapes with
// distinct issue paths: the width-1 head-stall cache, wide windows (which
// never cache), and latch-only issue without standby stations.
func TestEventCoreDifferentialIssueWidths(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 12, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []MTConfig{
		{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true, IssueWidth: 2},
		{ThreadSlots: 4, LoadStoreUnits: 2}, // issue latches, no standby
		{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true, RotationInterval: 3},
	} {
		runEventCoreDifferential(t, cfg, rt.Par.Text,
			func() (*Memory, error) { return rt.NewMemory(rt.Par, cfg.ThreadSlots) })
	}
}

// TestEventCoreDifferentialConcurrentMT exercises the paths the event core
// optimises hardest: long remote-latency quiescent stretches (the empty
// event-set horizon) alternating with data-absence context switches.
func TestEventCoreDifferentialConcurrentMT(t *testing.T) {
	prog, err := Assemble(concurrentMTSrc)
	if err != nil {
		t.Fatal(err)
	}
	mkMem := func() (*Memory, error) {
		m := NewMemoryWithRemote(8192, 4096, 300)
		for i := int64(4096); i < 8192; i++ {
			m.SetInt(i, i%97)
		}
		return m, nil
	}
	for _, suppress := range []bool{false, true} {
		runEventCoreDifferential(t, MTConfig{
			ThreadSlots:      1,
			ContextFrames:    4,
			StandbyStations:  true,
			ExplicitRotation: suppress,
		}, prog.Text, mkMem, 0, 0, 0, 0)
	}
}

func TestEventCoreDifferentialTraceReplay(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 8, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := RecordTrace(rt.Seq.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	traces := [][]TraceRecord{recs, recs, recs, recs}
	var results [2]MTResult
	for i, disable := range []bool{true, false} {
		res, err := ReplayTraces(MTConfig{
			ThreadSlots:      4,
			LoadStoreUnits:   2,
			StandbyStations:  true,
			DisableEventCore: disable,
		}, traces)
		if err != nil {
			t.Fatalf("DisableEventCore=%v: %v", disable, err)
		}
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("trace replay Result differs between cores:\n  legacy: %+v\n  event:  %+v", results[0], results[1])
	}
}

// TestEventCoreDifferentialMinC replays every MinC program shipped under
// examples/programs (the curated fuzz-corpus survivors) on both cores at
// several machine widths.
func TestEventCoreDifferentialMinC(t *testing.T) {
	dir := filepath.Join("examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		n++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := CompileMinC(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for _, slots := range []int{1, 4, 8} {
			slots := slots
			t.Run(fmt.Sprintf("%s/S%d", strings.TrimSuffix(e.Name(), ".mc"), slots), func(t *testing.T) {
				runEventCoreDifferential(t,
					MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true},
					prog.Text, func() (*Memory, error) {
						m, err := prog.NewMemory(1024)
						if err != nil {
							return nil, err
						}
						SetMinCThreads(prog, m, slots)
						return m, nil
					})
			})
		}
	}
	if n == 0 {
		t.Error("no MinC programs found under examples/programs")
	}
}

// TestEventCoreDifferentialMetricsJSON runs an observed simulation on both
// cores and requires the full metrics report — totals, per-unit busy
// cycles, per-slot stall breakdowns, interval samples — to serialise
// byte-identically. Observers pin the machine to cycle-by-cycle stepping,
// so this covers the event core's per-cycle dirty-set paths, not just its
// quiescent jumps.
func TestEventCoreDifferentialMetricsJSON(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 12, Spheres: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}
	var out [2][]byte
	for i, disable := range []bool{true, false} {
		c := cfg
		c.DisableEventCore = disable
		m, err := rt.NewMemory(rt.Par, c.ThreadSlots)
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector(c, CollectorOptions{MetricsInterval: 64})
		if _, err := RunMTObserved(c, rt.Par.Text, m, []Observer{col}); err != nil {
			t.Fatalf("DisableEventCore=%v: %v", disable, err)
		}
		var buf bytes.Buffer
		if err := col.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("metrics report JSON differs between cores")
	}
}

// TestParallelSweepByteIdentical proves the sweep engine is deterministic:
// the full paper-reproduction report serialises byte-identically whether
// the cells run sequentially or concurrently.
func TestParallelSweepByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	w := RayTraceConfig{Rays: 12, Spheres: 4}
	var out [2][]byte
	for i, workers := range []int{1, 8} {
		SetParallelism(workers)
		rep, err := RunFullReport(w, 40, 24)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = js
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Error("report JSON differs between sequential and parallel sweeps")
	}
}

func TestParallelMultiprogramIdentical(t *testing.T) {
	defer SetParallelism(0)
	var out [2][]MultiprogramCell
	for i, workers := range []int{1, 8} {
		SetParallelism(workers)
		cells, err := RunMultiprogram([]int{2, 4})
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		out[i] = cells
	}
	if !reflect.DeepEqual(out[0], out[1]) {
		t.Errorf("multiprogram cells differ:\n  seq: %+v\n  par: %+v", out[0], out[1])
	}
}
