package hirata

import (
	"fmt"
	"strings"

	"hirata/internal/core"
	"hirata/internal/trace"
)

// MultiprogramCell is one measurement of heterogeneous multiprogrammed
// throughput: several different programs' traces replayed simultaneously.
type MultiprogramCell struct {
	Slots        int
	Cycles       uint64
	SerialRISC   uint64  // the same jobs run back to back on the baseline
	Throughput   float64 // serial / multithreaded
	Instructions uint64
}

// RunMultiprogram records traces of three unrelated jobs (a ray-tracing
// slice, a Livermore Kernel 1 loop and a linked-list traversal), then
// replays one trace per thread slot, cycling through the job mix. It
// reports the throughput gain over running the jobs sequentially on the
// baseline RISC machine — the multiprogramming view of the paper's
// throughput argument (§1: the processor is meant as an element of a
// multiprocessor running many independent threads).
func RunMultiprogram(slots []int) ([]MultiprogramCell, error) {
	type job struct {
		name   string
		recs   []trace.Record
		cycles uint64 // baseline RISC cycles
	}
	var jobs []job

	// Job 1: a small ray-tracing slice.
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 24, Spheres: 8})
	if err != nil {
		return nil, err
	}
	mRT, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	recsRT, err := trace.RecordProgram(rt.Seq.Text, mRT, 0)
	if err != nil {
		return nil, err
	}
	mRT2, err := rt.NewMemory(rt.Seq, 1)
	if err != nil {
		return nil, err
	}
	resRT, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, rt.Seq.Text, mRT2)
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, job{"raytrace", recsRT, resRT.Cycles})

	// Job 2: Livermore Kernel 1.
	lv, err := BuildLivermore(LivermoreConfig{N: 120})
	if err != nil {
		return nil, err
	}
	mLV, err := lv.Seq.NewMemory(64)
	if err != nil {
		return nil, err
	}
	recsLV, err := trace.RecordProgram(lv.Seq.Text, mLV, 0)
	if err != nil {
		return nil, err
	}
	mLV2, err := lv.Seq.NewMemory(64)
	if err != nil {
		return nil, err
	}
	resLV, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, lv.Seq.Text, mLV2)
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, job{"livermore", recsLV, resLV.Cycles})

	// Job 3: linked-list traversal.
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: 100, BreakAt: -1})
	if err != nil {
		return nil, err
	}
	mLL, err := ll.NewMemory(ll.Seq, 1)
	if err != nil {
		return nil, err
	}
	recsLL, err := trace.RecordProgram(ll.Seq.Text, mLL, 0)
	if err != nil {
		return nil, err
	}
	mLL2, err := ll.NewMemory(ll.Seq, 1)
	if err != nil {
		return nil, err
	}
	resLL, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, ll.Seq.Text, mLL2)
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, job{"linkedlist", recsLL, resLL.Cycles})

	var out []MultiprogramCell
	for _, s := range slots {
		traces := make([][]core.TraceInput, s)
		var serial uint64
		var instr uint64
		for i := 0; i < s; i++ {
			j := jobs[i%len(jobs)]
			traces[i] = make([]core.TraceInput, len(j.recs))
			for k, r := range j.recs {
				traces[i][k] = core.TraceInput{Ins: r.Ins, Addr: r.Addr}
			}
			serial += j.cycles
			instr += uint64(len(j.recs))
		}
		p, err := core.NewTraceDriven(core.Config{
			ThreadSlots:     s,
			LoadStoreUnits:  2,
			StandbyStations: true,
		}, traces)
		if err != nil {
			return nil, err
		}
		res, err := p.Run()
		if err != nil {
			return nil, fmt.Errorf("multiprogram (%d slots): %w", s, err)
		}
		out = append(out, MultiprogramCell{
			Slots:        s,
			Cycles:       res.Cycles,
			SerialRISC:   serial,
			Throughput:   float64(serial) / float64(res.Cycles),
			Instructions: res.Instructions,
		})
	}
	return out, nil
}

// FormatMultiprogram renders the multiprogramming experiment.
func FormatMultiprogram(cells []MultiprogramCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heterogeneous multiprogramming (trace replay: raytrace + LK1 + list walk)\n")
	fmt.Fprintf(&b, "%-6s | %-12s | %-14s | %-10s\n", "slots", "cycles", "serial (risc)", "throughput")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-12d | %-14d | %.2fx\n", c.Slots, c.Cycles, c.SerialRISC, c.Throughput)
	}
	return b.String()
}
