package hirata

import (
	"fmt"
	"strings"

	"hirata/internal/core"
	"hirata/internal/trace"
)

// MultiprogramCell is one measurement of heterogeneous multiprogrammed
// throughput: several different programs' traces replayed simultaneously.
type MultiprogramCell struct {
	Slots        int
	Cycles       uint64
	SerialRISC   uint64  // the same jobs run back to back on the baseline
	Throughput   float64 // serial / multithreaded
	Instructions uint64
}

// RunMultiprogram records traces of three unrelated jobs (a ray-tracing
// slice, a Livermore Kernel 1 loop and a linked-list traversal), then
// replays one trace per thread slot, cycling through the job mix. It
// reports the throughput gain over running the jobs sequentially on the
// baseline RISC machine — the multiprogramming view of the paper's
// throughput argument (§1: the processor is meant as an element of a
// multiprocessor running many independent threads).
func RunMultiprogram(slots []int) ([]MultiprogramCell, error) {
	type job struct {
		name   string
		recs   []trace.Record
		cycles uint64 // baseline RISC cycles
	}

	// Phase 1: each job records its trace and runs its RISC baseline in an
	// independent sweep cell. build returns (program text, fresh memory).
	jobSpecs := []struct {
		name  string
		build func() ([]Instruction, func() (*Memory, error), error)
	}{
		{"raytrace", func() ([]Instruction, func() (*Memory, error), error) {
			rt, err := BuildRayTrace(RayTraceConfig{Rays: 24, Spheres: 8})
			if err != nil {
				return nil, nil, err
			}
			return rt.Seq.Text, func() (*Memory, error) { return rt.NewMemory(rt.Seq, 1) }, nil
		}},
		{"livermore", func() ([]Instruction, func() (*Memory, error), error) {
			lv, err := BuildLivermore(LivermoreConfig{N: 120})
			if err != nil {
				return nil, nil, err
			}
			return lv.Seq.Text, func() (*Memory, error) { return lv.Seq.NewMemory(64) }, nil
		}},
		{"linkedlist", func() ([]Instruction, func() (*Memory, error), error) {
			ll, err := BuildLinkedList(LinkedListConfig{Nodes: 100, BreakAt: -1})
			if err != nil {
				return nil, nil, err
			}
			return ll.Seq.Text, func() (*Memory, error) { return ll.NewMemory(ll.Seq, 1) }, nil
		}},
	}
	jobs, err := runCells(len(jobSpecs), func(i int) (job, error) {
		sp := jobSpecs[i]
		text, mkMem, err := sp.build()
		if err != nil {
			return job{}, err
		}
		mRec, err := mkMem()
		if err != nil {
			return job{}, err
		}
		recs, err := trace.RecordProgram(text, mRec, 0)
		if err != nil {
			return job{}, err
		}
		mBase, err := mkMem()
		if err != nil {
			return job{}, err
		}
		res, err := RunRISC(RISCConfig{LoadStoreUnits: 2}, text, mBase)
		if err != nil {
			return job{}, err
		}
		return job{sp.name, recs, res.Cycles}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: one replay cell per slot count, each with its own processor.
	return runCells(len(slots), func(si int) (MultiprogramCell, error) {
		s := slots[si]
		traces := make([][]core.TraceInput, s)
		var serial uint64
		var instr uint64
		for i := 0; i < s; i++ {
			j := jobs[i%len(jobs)]
			traces[i] = make([]core.TraceInput, len(j.recs))
			for k, r := range j.recs {
				traces[i][k] = core.TraceInput{Ins: r.Ins, Addr: r.Addr}
			}
			serial += j.cycles
			instr += uint64(len(j.recs))
		}
		p, err := core.NewTraceDriven(core.Config{
			ThreadSlots:     s,
			LoadStoreUnits:  2,
			StandbyStations: true,
		}, traces)
		if err != nil {
			return MultiprogramCell{}, err
		}
		res, err := p.Run()
		if err != nil {
			return MultiprogramCell{}, fmt.Errorf("multiprogram (%d slots): %w", s, err)
		}
		return MultiprogramCell{
			Slots:        s,
			Cycles:       res.Cycles,
			SerialRISC:   serial,
			Throughput:   float64(serial) / float64(res.Cycles),
			Instructions: res.Instructions,
		}, nil
	})
}

// FormatMultiprogram renders the multiprogramming experiment.
func FormatMultiprogram(cells []MultiprogramCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heterogeneous multiprogramming (trace replay: raytrace + LK1 + list walk)\n")
	fmt.Fprintf(&b, "%-6s | %-12s | %-14s | %-10s\n", "slots", "cycles", "serial (risc)", "throughput")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-6d | %-12d | %-14d | %.2fx\n", c.Slots, c.Cycles, c.SerialRISC, c.Throughput)
	}
	return b.String()
}
