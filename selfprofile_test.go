package hirata

// Host self-observability guards: the profiled simulator must stay within a
// few percent of the unprofiled one at the default sampling rate, and
// attaching the profiler or sweep telemetry must not change any simulated
// result or report byte (the probe observes the cycle loop, it never
// steers it). See docs/OBSERVABILITY.md, "Host-level observability".

import (
	"testing"
	"time"

	"hirata/internal/core"
)

// BenchmarkSimulatorThroughputSelfProfile is BenchmarkSimulatorThroughput
// with the host profiler attached at the default 1/32 sampling: the
// benchdiff gate and BENCH_history.jsonl track profiled throughput next to
// plain throughput, so self-profiling overhead regressions show up as a
// widening gap between the two.
func BenchmarkSimulatorThroughputSelfProfile(b *testing.B) {
	rt := benchSetup(b)
	cfg := core.Config{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	m, err := rt.NewMemory(rt.Par, 8)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunMT(cfg, rt.Par.Text, m)
	if err != nil {
		b.Fatal(err)
	}
	simCycles := res.Cycles
	prof := NewHostProfiler(HostProfilerOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rt.NewMemory(rt.Par, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunMTHostProfiled(cfg, rt.Par.Text, m, prof); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// TestSelfProfileOverheadWithinBudget asserts the enabled-path cost: at the
// default sampling rate the profiled run must stay within 5% of the plain
// run. Plain and profiled runs are tightly interleaved (plain, profiled,
// plain, ...) so a load burst on a shared runner inflates both sides
// instead of just one, and each side is reduced to its best (minimum) —
// scheduler noise only ever adds time. The interleaving also yields a
// control: two independent best-of-N estimates of the *same* plain run.
// When those disagree by more than 3%, the host cannot resolve a 5%
// budget and the test skips — the self-profile benchmark and
// BENCH_history.jsonl track the gap where a flaky gate cannot.
func TestSelfProfileOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 48, Spheres: 6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	once := func(prof *HostProfiler) time.Duration {
		m, err := rt.NewMemory(rt.Par, cfg.ThreadSlots)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if prof != nil {
			_, err = RunMTHostProfiled(cfg, rt.Par.Text, m, prof)
		} else {
			_, err = RunMT(cfg, rt.Par.Text, m)
		}
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	best := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	once(nil) // warm caches before the measured attempts
	const reps = 8
	for attempt := 0; attempt < 3; attempt++ {
		huge := time.Duration(1<<63 - 1)
		plainA, profiled, plainB := huge, huge, huge
		for i := 0; i < reps; i++ {
			plainA = best(plainA, once(nil))
			profiled = best(profiled, once(NewHostProfiler(HostProfilerOptions{})))
			plainB = best(plainB, once(nil))
		}
		plain := best(plainA, plainB)
		if float64(profiled) <= float64(plain)*1.05 {
			return
		}
		control := float64(plainA) / float64(plainB)
		if control < 1 {
			control = 1 / control
		}
		if control > 1.03 {
			continue // measurement can't resolve the budget; try again
		}
		if attempt == 2 {
			t.Fatalf("self-profiling overhead %0.1f%% exceeds the 5%% budget (plain %v, profiled %v, control gap %0.1f%%)",
				(float64(profiled)/float64(plain)-1)*100, plain, profiled, (control-1)*100)
		}
	}
	t.Skip("host too noisy to assert a 5% budget: plain-vs-plain control exceeded 3% on every attempt")
}

// TestSelfProfileReportBytesUnchanged is the differential guard for the
// sweep side: running an experiment with sweep telemetry and a profiled
// representative run must reproduce the exact bytes an uninstrumented run
// produces.
func TestSelfProfileReportBytesUnchanged(t *testing.T) {
	rt := RayTraceConfig{Rays: 24, Spheres: 4}
	render := func(instrument bool) string {
		if instrument {
			SetSweepTelemetry(NewSweepRecorder())
			defer SetSweepTelemetry(nil)
		}
		cells, err := RunSpeedupCurve(rt, 8)
		if err != nil {
			t.Fatal(err)
		}
		return FormatSpeedupCurveCSV(cells)
	}
	plain := render(false)
	instrumented := render(true)
	if plain != instrumented {
		t.Errorf("sweep telemetry changed the speed-up curve:\nplain:\n%s\ninstrumented:\n%s", plain, instrumented)
	}
}
