package hirata

// Cross-run observability: the facade glue between the simulation runners
// and internal/runledger. A process attaches one ledger with SetRunLedger;
// from then on every completed RunMT* simulation — a hirata-sim run, each
// hirata-bench experiment cell, every sweep worker, every -explore
// re-simulation — is recorded as a content-addressed RunRecord. The hook
// digests the run's inputs *before* the simulation starts (the run mutates
// the memory image) and commits only successful runs, so aborted or
// erroring simulations never pollute the ledger.

import (
	"sync"

	"hirata/internal/obs"
	"hirata/internal/runledger"
)

// Cross-run ledger types (see internal/runledger and the "Cross-run
// observability" section of docs/OBSERVABILITY.md).
type (
	// RunLedger is an append-only, content-addressed store of run records.
	RunLedger = runledger.Ledger
	// RunRecord is one recorded simulation: input identity (run key),
	// result metrics, CPI stack, optional bounds and host-profile digest.
	RunRecord = runledger.RunRecord
	// RunLedgerEntry is one stored record with its content address.
	RunLedgerEntry = runledger.Entry
	// RunLedgerStats summarises a ledger for /metrics.
	RunLedgerStats = runledger.Stats
	// RunDiff attributes the cycle delta between two recorded runs exactly
	// across CPI-stack buckets and per-class utilization.
	RunDiff = runledger.Diff
	// RunShift is one flagged cycle-count change in a ledger lineage.
	RunShift = runledger.Shift
	// RunsSource serves a ledger on the observability HTTP endpoints.
	RunsSource = obs.RunsSource
)

// OpenRunLedger opens (creating if absent) a ledger file, hash-verifying
// every existing record.
func OpenRunLedger(path string) (*RunLedger, error) { return runledger.Open(path) }

// NewRunLedger returns an in-memory ledger (nothing written to disk).
func NewRunLedger() *RunLedger { return runledger.NewMemory() }

// DiffRuns computes the exact cycle-delta attribution between two records.
func DiffRuns(a, b *RunRecord) (*RunDiff, error) { return runledger.Compute(a, b) }

// recorder is the process-wide run recorder SetRunLedger installs.
var recorder struct {
	mu  sync.Mutex
	led *runledger.Ledger
	tag string
	err error // last append failure, if any
}

// SetRunLedger attaches a ledger to every subsequent RunMT* simulation in
// this process; records carry tag as their lineage label. A nil ledger
// detaches. Recording is deliberately out-of-band: a ledger failure never
// fails the simulation (check RunLedgerError at exit).
func SetRunLedger(l *RunLedger, tag string) {
	recorder.mu.Lock()
	recorder.led, recorder.tag, recorder.err = l, tag, nil
	recorder.mu.Unlock()
}

// RunLedgerError returns the most recent recording failure since the
// ledger was attached, or nil. CLIs surface this at exit.
func RunLedgerError() error {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	return recorder.err
}

// recordBegin snapshots the attached ledger and digests the run inputs.
// Must run before the simulation: the run mutates m.
func recordBegin(cfg MTConfig, text []Instruction, m *Memory, startPCs []int64) (*runledger.Pending, *runledger.Ledger, string) {
	recorder.mu.Lock()
	led, tag := recorder.led, recorder.tag
	recorder.mu.Unlock()
	if led == nil {
		return nil, nil, ""
	}
	return runledger.Begin(cfg, text, m, startPCs), led, tag
}

// recordCommit appends the completed run's record. decorate, when non-nil,
// attaches the mode's optional sections (exact CPI, host-profile digest)
// before hashing.
func recordCommit(led *runledger.Ledger, pend *runledger.Pending, tag string, res MTResult, runErr error, decorate func(*RunRecord)) {
	if led == nil || runErr != nil {
		return
	}
	rec := pend.Finish(res, tag)
	if decorate != nil {
		decorate(rec)
	}
	if _, _, err := led.Append(rec); err != nil {
		recorder.mu.Lock()
		recorder.err = err
		recorder.mu.Unlock()
	}
}

// AttachExactCPI copies a finalized collector's exact per-slot CPI stack
// into the record, replacing the coarser stall-derived attribution for
// diffs. The copy is refused (no-op) unless every slot's buckets sum
// exactly to the run's cycles — the invariant diff exactness rests on.
func AttachExactCPI(rec *RunRecord, c *Collector) {
	st := c.CPIStack()
	if st.Cycles != rec.Result.Cycles || len(st.Slots) == 0 {
		return
	}
	names := make([]string, int(obs.NumCPIBuckets))
	for b := 0; b < int(obs.NumCPIBuckets); b++ {
		names[b] = obs.CPIBucket(b).String()
	}
	rows := make([][]int64, len(st.Slots))
	for i, s := range st.Slots {
		row := make([]int64, int(obs.NumCPIBuckets))
		var sum int64
		for b := 0; b < int(obs.NumCPIBuckets); b++ {
			row[b] = int64(s.Cycles[b])
			sum += row[b]
		}
		if sum != int64(rec.Result.Cycles) {
			return
		}
		rows[i] = row
	}
	rec.SetExactCPI(names, rows)
}

// AttachStaticBounds computes and attaches the static lower-bound
// certificate for the recorded program on the recorded machine.
func AttachStaticBounds(rec *RunRecord, cfg MTConfig, text []Instruction, startPCs ...int64) {
	b := StaticBounds(cfg, text, startPCs...)
	rec.SetBounds(int64(b.DepBound), int64(b.ResourceBound), int64(b.IssueBound), int64(b.Bound), b.Unbounded)
}

// exactCPIDecorator returns a decorator attaching the first collector's
// exact CPI stack, for the observed run modes.
func exactCPIDecorator(observers []Observer) func(*RunRecord) {
	for _, o := range observers {
		if c, ok := o.(*Collector); ok {
			return func(rec *RunRecord) { AttachExactCPI(rec, c) }
		}
	}
	return nil
}

// hostDigestDecorator returns a decorator attaching the host profiler's
// artifact digest, for the host-profiled run modes.
func hostDigestDecorator(prof *HostProfiler) func(*RunRecord) {
	if prof == nil {
		return nil
	}
	return func(rec *RunRecord) {
		if d, err := prof.ProfileDigest(); err == nil {
			rec.HostProfileDigest = d
		}
	}
}

// chainDecorators composes optional record decorators.
func chainDecorators(ds ...func(*RunRecord)) func(*RunRecord) {
	var live []func(*RunRecord)
	for _, d := range ds {
		if d != nil {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return func(rec *RunRecord) {
		for _, d := range live {
			d(rec)
		}
	}
}

// ServeObservabilityWithSources is ServeObservability plus /hostmetrics
// (host) and the cross-run /runs endpoints (runs); nil sources serve 503
// on their routes.
func ServeObservabilityWithSources(addr string, c *Collector, prog *Program, host HostSource, runs RunsSource) (string, func() error, error) {
	return obs.ServeWithSources(addr, c, prog, host, runs)
}
