package hirata_test

import (
	"fmt"

	"hirata"
)

// Assemble a small fork/join program, run it on a 4-slot multithreaded
// processor and read back each thread's result.
func Example() {
	prog, err := hirata.Assemble(`
		ffork              ; start a thread on every idle slot
		tid  r1            ; logical processor id
		addi r2, r1, 1
		mul  r3, r2, r2
		sw   r3, 100(r1)
		halt
	`)
	if err != nil {
		panic(err)
	}
	m := hirata.NewMemory(256)
	if _, err := hirata.RunMT(hirata.MTConfig{
		ThreadSlots:     4,
		LoadStoreUnits:  2,
		StandbyStations: true,
	}, prog.Text, m); err != nil {
		panic(err)
	}
	for tid := int64(0); tid < 4; tid++ {
		fmt.Printf("thread %d computed %d\n", tid, m.IntAt(100+tid))
	}
	// Output:
	// thread 0 computed 1
	// thread 1 computed 4
	// thread 2 computed 9
	// thread 3 computed 16
}

// Compare the multithreaded processor against the sequential baseline on
// the paper's ray-tracing workload.
func ExampleRunMT() {
	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{Rays: 32, Spheres: 6})
	if err != nil {
		panic(err)
	}
	mSeq, _ := rt.NewMemory(rt.Seq, 1)
	seq, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: 2}, rt.Seq.Text, mSeq)
	if err != nil {
		panic(err)
	}
	mPar, _ := rt.NewMemory(rt.Par, 4)
	par, err := hirata.RunMT(hirata.MTConfig{
		ThreadSlots:     4,
		LoadStoreUnits:  2,
		StandbyStations: true,
	}, rt.Par.Text, mPar)
	if err != nil {
		panic(err)
	}
	fmt.Printf("4 thread slots are %.0fx faster than sequential\n",
		float64(seq.Cycles)/float64(par.Cycles))
	// Output:
	// 4 thread slots are 4x faster than sequential
}

// Compile a MinC kernel and run it.
func ExampleCompileMinC() {
	prog, err := hirata.CompileMinC(`
		global int squares[8];
		func main() {
			fork();
			int i = tid();
			while (i < 8) {
				squares[i] = i * i;
				i = i + nthreads();
			}
		}
	`)
	if err != nil {
		panic(err)
	}
	m, _ := prog.NewMemory(256)
	hirata.SetMinCThreads(prog, m, 4)
	if _, err := hirata.RunMT(hirata.MTConfig{ThreadSlots: 4, StandbyStations: true}, prog.Text, m); err != nil {
		panic(err)
	}
	base := prog.MustSymbol("squares")
	for i := int64(0); i < 8; i++ {
		fmt.Print(m.IntAt(base+i), " ")
	}
	fmt.Println()
	// Output:
	// 0 1 4 9 16 25 36 49
}

// Record a dynamic instruction trace and inspect its mix.
func ExampleRecordTrace() {
	prog, err := hirata.Assemble(`
		li   r1, 4
	loop:	lw   r2, 100(r1)
		add  r3, r3, r2
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	if err != nil {
		panic(err)
	}
	recs, err := hirata.RecordTrace(prog.Text, hirata.NewMemory(128))
	if err != nil {
		panic(err)
	}
	mix := hirata.TraceStats(recs)
	fmt.Printf("%d instructions, %d loads, %d branches\n", mix.Total, mix.Loads, mix.Branches)
	// Output:
	// 18 instructions, 4 loads, 4 branches
}
