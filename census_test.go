package hirata

// End-to-end check of the dirty-set refactor's headline number: on the
// parallel ray trace (the benchmark-class workload) the event core's touch
// census must report under 20% wasted structure visits — the dirty sets
// admit almost exclusively entries with real work — while the legacy scan
// core, measured by the same census, both visits more structure and wastes
// more of those visits.

import "testing"

func TestEventCoreCensusWasteBelow20Percent(t *testing.T) {
	rt, err := BuildRayTrace(RayTraceConfig{Rays: 48, Spheres: 6})
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) HostOpportunityReport {
		cfg := MTConfig{
			ThreadSlots:      8,
			LoadStoreUnits:   2,
			StandbyStations:  true,
			DisableEventCore: disable,
		}
		m, err := rt.NewMemory(rt.Par, cfg.ThreadSlots)
		if err != nil {
			t.Fatal(err)
		}
		// Dense sampling: the census fractions, not the timing, are under
		// test, so a stable estimate beats low overhead here.
		prof := NewHostProfiler(HostProfilerOptions{SampleEvery: 4})
		if _, err := RunMTHostProfiled(cfg, rt.Par.Text, m, prof); err != nil {
			t.Fatal(err)
		}
		rep := prof.Opportunity()
		if rep.SampledSteps == 0 || rep.TotalScans == 0 {
			t.Fatalf("DisableEventCore=%v: empty census (%d steps, %d visits)",
				disable, rep.SampledSteps, rep.TotalScans)
		}
		return rep
	}
	legacy, event := run(true), run(false)
	t.Logf("legacy: %.1f%% wasted of %d visits; event: %.1f%% wasted of %d visits",
		100*legacy.WastedFrac, legacy.TotalScans, 100*event.WastedFrac, event.TotalScans)
	if event.WastedFrac >= 0.20 {
		t.Errorf("event core wasted fraction = %.1f%%, want < 20%%\n%s",
			100*event.WastedFrac, event.Format())
	}
	if event.ScansPerStep >= legacy.ScansPerStep {
		t.Errorf("event core visits %.1f structures per step, legacy %.1f; dirty sets harvested nothing",
			event.ScansPerStep, legacy.ScansPerStep)
	}
	if event.WastedFrac >= legacy.WastedFrac {
		t.Errorf("event core wasted %.1f%% >= legacy %.1f%%", 100*event.WastedFrac, 100*legacy.WastedFrac)
	}
}
