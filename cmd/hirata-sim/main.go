// Command hirata-sim assembles and runs a program on one of the three
// machine models: the multithreaded processor (mt), the baseline
// superpipelined RISC (risc), or the untimed functional interpreter
// (interp).
//
// Usage:
//
//	hirata-sim [flags] program.s      (or program.mc for MinC source)
//
//	hirata-sim -machine mt -slots 4 -ls 2 -standby prog.s
//	hirata-sim -machine risc prog.s
//	hirata-sim -machine interp -dump-mem 100:110 prog.s
//
// Observability (mt only; see docs/OBSERVABILITY.md):
//
//	hirata-sim -chrome-trace out.json prog.s   Perfetto timeline → out.json
//	hirata-sim -profile prog.s                 per-PC hotspot report
//	hirata-sim -metrics-interval 100 prog.s    interval metrics table
//	hirata-sim -http :8080 prog.s              live /metrics, /trace.json, pprof
//	hirata-sim -cpi-stack prog.s               per-slot CPI-stack accounting
//	hirata-sim -cpi-folded out.folded prog.s   folded stacks for flamegraph.pl
//	hirata-sim -critpath prog.s                dynamic critical path + breakdown
//	hirata-sim -whatif "+1 alu,+1 slot" prog.s bounded what-if estimates
//	hirata-sim -record runs.ledger prog.s      append the run to a content-
//	                                           addressed ledger (hirata-report)
//	hirata-sim -static-check prog.s            verify first (refuse on provable
//	                                           deadlocks), then print the static
//	                                           cycle bound next to the measured run
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hirata"
)

func main() {
	var (
		machine   = flag.String("machine", "mt", "machine model: mt, risc, or interp")
		slots     = flag.Int("slots", 1, "thread slots (mt)")
		ls        = flag.Int("ls", 1, "load/store units")
		standby   = flag.Bool("standby", true, "standby stations (mt)")
		width     = flag.Int("width", 1, "superscalar issue width per slot (mt)")
		rotation  = flag.Int("rotation", 8, "priority rotation interval in cycles (mt)")
		explicit  = flag.Bool("explicit", false, "start in explicit-rotation mode (mt)")
		frames    = flag.Int("frames", 0, "context frames (mt; 0 = one per slot)")
		threads   = flag.Int("threads", 1, "threads started at pc 0 (mt)")
		headroom  = flag.Int("headroom", 4096, "extra data-memory words beyond the data image")
		dumpMem   = flag.String("dump-mem", "", "memory range to print after the run, e.g. 100:110")
		pipeline  = flag.Bool("pipeline", false, "print a cycle-by-cycle pipeline event trace (mt)")
		statCheck = flag.Bool("static-check", false, "verify before running: refuse on statically provable deadlocks (L015..L017), warn on other findings, and print the static cycle bound next to the measured result (mt)")
		verbose   = flag.Bool("v", false, "print full statistics")

		chromeTrace  = flag.String("chrome-trace", "", "write a Chrome Trace Event JSON timeline to this file (mt; load in ui.perfetto.dev)")
		profileOut   = flag.Bool("profile", false, "print a per-PC hotspot report after the run (mt)")
		metricsEvery = flag.Int("metrics-interval", 0, "sample interval metrics every N cycles and print the time series (mt)")
		httpAddr     = flag.String("http", "", "serve live /metrics, /metrics.json, /trace.json, /profile and pprof on this address during the run (mt)")
		cpiStack     = flag.Bool("cpi-stack", false, "print the per-slot CPI-stack cycle-accounting table (mt)")
		cpiFolded    = flag.String("cpi-folded", "", "write the CPI stack in collapsed/folded format to this file (mt; feed to flamegraph.pl)")
		critPathOut  = flag.Bool("critpath", false, "print the dynamic critical path with breakdown (mt)")
		critPathJSON = flag.String("critpath-json", "", "write the critical-path analysis as JSON to this file (mt)")
		whatIf       = flag.String("whatif", "", "comma-separated what-if scenarios to estimate, e.g. \"+1 alu,+1 ls,+1 slot\" (mt)")

		selfProfile = flag.Bool("self-profile", false, "profile the simulator itself: print the cycle-loop phase breakdown and dirty-set opportunity report after the run (mt; docs/OBSERVABILITY.md)")
		hostTrace   = flag.String("host-trace", "", "with -self-profile, write the host-side Chrome Trace Event JSON here (mt)")
		recordPath  = flag.String("record", "", "append the completed run to this content-addressed ledger file (mt; inspect with hirata-report)")
		runTag      = flag.String("run-tag", "", "lineage tag stored in the run record (with -record)")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hirata-sim", hirata.Version())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hirata-sim [flags] program.s")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	// .mc files are MinC source; everything else is assembly.
	var prog *hirata.Program
	if strings.HasSuffix(flag.Arg(0), ".mc") {
		prog, err = hirata.CompileMinC(string(src))
	} else {
		prog, err = hirata.Assemble(string(src))
	}
	if err != nil {
		fail(err)
	}
	m, err := prog.NewMemory(int64(*headroom))
	if err != nil {
		fail(err)
	}

	switch *machine {
	case "mt":
		cfg := hirata.MTConfig{
			ThreadSlots:      *slots,
			LoadStoreUnits:   *ls,
			StandbyStations:  *standby,
			IssueWidth:       *width,
			RotationInterval: *rotation,
			ExplicitRotation: *explicit,
			ContextFrames:    *frames,
		}
		pcs := make([]int64, *threads)
		hirata.SetMinCThreads(prog, m, *slots)

		if *statCheck {
			if err := staticCheck(prog, cfg, m, pcs); err != nil {
				fail(err)
			}
		}

		var observers []hirata.Observer
		var col *hirata.Collector
		if *chromeTrace != "" || *profileOut || *metricsEvery > 0 || *httpAddr != "" ||
			*cpiStack || *cpiFolded != "" || *critPathOut || *critPathJSON != "" || *whatIf != "" {
			col = hirata.NewCollector(cfg, hirata.CollectorOptions{MetricsInterval: *metricsEvery})
			observers = append(observers, col)
		}
		if *pipeline {
			observers = append(observers, &hirata.TextTracer{W: os.Stdout})
		}
		var prof *hirata.HostProfiler
		if *selfProfile {
			prof = hirata.NewHostProfiler(hirata.HostProfilerOptions{})
		}
		var led *hirata.RunLedger
		if *recordPath != "" {
			led, err = hirata.OpenRunLedger(*recordPath)
			if err != nil {
				fail(err)
			}
			hirata.SetRunLedger(led, *runTag)
		}
		var shutdown func() error
		if *httpAddr != "" {
			// Bind before the run starts so the live endpoints exist for its
			// whole duration. With -self-profile the profiler also backs
			// /hostmetrics.
			var host hirata.HostSource
			if prof != nil {
				host = prof
			}
			var runs hirata.RunsSource
			if led != nil {
				runs = led
			}
			bound, stop, serr := hirata.ServeObservabilityWithSources(*httpAddr, col, prog, host, runs)
			if serr != nil {
				fail(serr)
			}
			shutdown = stop
			fmt.Fprintf(os.Stderr, "hirata-sim: serving observability at http://%s\n", bound)
		}

		var res hirata.MTResult
		switch {
		case len(observers) > 0:
			res, err = hirata.RunMTProfiledObserved(cfg, prog.Text, m, observers, prof, pcs...)
		case prof != nil:
			res, err = hirata.RunMTHostProfiled(cfg, prog.Text, m, prof, pcs...)
		default:
			res, err = hirata.RunMT(cfg, prog.Text, m, pcs...)
		}
		if err != nil {
			fail(err)
		}
		if *verbose {
			fmt.Print(res.String())
		} else {
			fmt.Printf("cycles=%d instructions=%d ipc=%.3f\n", res.Cycles, res.Instructions, res.IPC())
		}
		if *statCheck {
			printStaticBound(cfg, prog, res.Cycles, pcs)
		}
		if led != nil {
			if lerr := hirata.RunLedgerError(); lerr != nil {
				fail(lerr)
			}
			if es := led.Last(1); len(es) == 1 {
				fmt.Fprintf(os.Stderr, "hirata-sim: recorded run %s (key %s) to %s\n",
					es[0].Hash[:12], es[0].Record.Key[:12], *recordPath)
			}
		}

		if *chromeTrace != "" {
			f, ferr := os.Create(*chromeTrace)
			if ferr != nil {
				fail(ferr)
			}
			if err := col.WriteChromeTrace(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "hirata-sim: wrote %s (load in ui.perfetto.dev)\n", *chromeTrace)
		}
		if *metricsEvery > 0 {
			fmt.Println()
			if err := col.WriteIntervalTable(os.Stdout); err != nil {
				fail(err)
			}
		}
		if *profileOut {
			fmt.Println()
			if err := col.Profile().WriteAnnotated(os.Stdout, prog); err != nil {
				fail(err)
			}
		}
		if *cpiStack {
			fmt.Println()
			if err := col.CPIStack().WriteCPITable(os.Stdout); err != nil {
				fail(err)
			}
		}
		if *cpiFolded != "" {
			f, ferr := os.Create(*cpiFolded)
			if ferr != nil {
				fail(ferr)
			}
			if err := col.CPIStack().WriteCPIFolded(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "hirata-sim: wrote %s (feed to flamegraph.pl or speedscope)\n", *cpiFolded)
		}
		if *critPathOut || *critPathJSON != "" {
			cp, cerr := col.CritPath()
			if cerr != nil {
				fail(cerr)
			}
			if *critPathOut {
				fmt.Println()
				if err := cp.WriteText(os.Stdout, prog); err != nil {
					fail(err)
				}
			}
			if *critPathJSON != "" {
				cp.Annotate(prog)
				f, ferr := os.Create(*critPathJSON)
				if ferr != nil {
					fail(ferr)
				}
				if err := cp.WriteJSON(f); err != nil {
					fail(err)
				}
				if err := f.Close(); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "hirata-sim: wrote %s\n", *critPathJSON)
			}
		}
		if *whatIf != "" {
			ests, werr := col.WhatIfAll(*whatIf)
			if werr != nil {
				fail(werr)
			}
			fmt.Println()
			fmt.Print(hirata.FormatWhatIfEstimates(ests))
		}
		if prof != nil {
			fmt.Println()
			fmt.Print(prof.Profile().Format())
			fmt.Println()
			fmt.Print(prof.Opportunity().Format())
			if *hostTrace != "" {
				f, ferr := os.Create(*hostTrace)
				if ferr != nil {
					fail(ferr)
				}
				if err := hirata.WriteHostTrace(f, prof, nil); err != nil {
					fail(err)
				}
				if err := f.Close(); err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "hirata-sim: wrote %s (load in ui.perfetto.dev)\n", *hostTrace)
			}
		}
		if shutdown != nil {
			fmt.Fprintln(os.Stderr, "hirata-sim: run finished; endpoints stay up — interrupt (ctrl-C) to exit")
			waitForInterrupt()
			_ = shutdown()
		}
	case "risc":
		res, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: *ls}, prog.Text, m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("cycles=%d instructions=%d cpi=%.3f branches=%d\n",
			res.Cycles, res.Instructions, res.CPI(), res.Branches)
	case "interp":
		steps, err := hirata.Interpret(prog.Text, m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("instructions=%d\n", steps)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}

	if *dumpMem != "" {
		lo, hi, err := parseRange(*dumpMem)
		if err != nil {
			fail(err)
		}
		for a := lo; a < hi; a++ {
			v, err := m.Load(a)
			if err != nil {
				fail(err)
			}
			fmt.Printf("mem[%d] = %#016x (int %d, float %g)\n", a, v, int64(v), m.FloatAt(a))
		}
	}
}

// staticCheck runs the verifier with the queue-protocol liveness checks
// enabled before simulating. A provable deadlock (L015..L017) refuses the
// run — simulating it would only spin to MaxCycles — while every other
// finding is reported as a warning and the run proceeds.
func staticCheck(prog *hirata.Program, cfg hirata.MTConfig, m *hirata.Memory, pcs []int64) error {
	lc := hirata.LintConfig{
		QueueDepth:  cfg.QueueDepth,
		ThreadSlots: cfg.ThreadSlots,
		InterThread: true,
		Deadlock:    true,
		MemWords:    m.Size(),
	}
	seen := map[int]bool{}
	for _, pc := range pcs {
		if !seen[int(pc)] {
			seen[int(pc)] = true
			lc.Entries = append(lc.Entries, int(pc))
		}
	}
	fatal := 0
	for _, d := range hirata.LintWithConfig(prog, lc) {
		switch d.Code {
		case "L015", "L016", "L017":
			fatal++
			fmt.Fprintf(os.Stderr, "hirata-sim: static-check: %s\n", d)
		default:
			fmt.Fprintf(os.Stderr, "hirata-sim: static-check warning: %s\n", d)
		}
	}
	if fatal > 0 {
		return fmt.Errorf("static-check found %d provable deadlock(s); refusing to run", fatal)
	}
	return nil
}

// printStaticBound puts the static lower bound next to the measured cycle
// count; the gap is the schedule-quality headroom the machine left on the
// table.
func printStaticBound(cfg hirata.MTConfig, prog *hirata.Program, measured uint64, pcs []int64) {
	b := hirata.StaticBounds(cfg, prog.Text, pcs...)
	if b.Unbounded {
		fmt.Println("static-bound=unbounded (some thread never reaches halt)")
		return
	}
	gap := 0.0
	if b.Bound > 0 {
		gap = (float64(measured) - float64(b.Bound)) / float64(b.Bound) * 100
	}
	fmt.Printf("static-bound=%d measured=%d headroom=%.1f%%\n", b.Bound, measured, gap)
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q, want LO:HI", s)
	}
	if lo, err = strconv.ParseInt(parts[0], 0, 64); err != nil {
		return
	}
	hi, err = strconv.ParseInt(parts[1], 0, 64)
	return
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hirata-sim:", err)
	os.Exit(1)
}
