// Command hirata-sim assembles and runs a program on one of the three
// machine models: the multithreaded processor (mt), the baseline
// superpipelined RISC (risc), or the untimed functional interpreter
// (interp).
//
// Usage:
//
//	hirata-sim [flags] program.s      (or program.mc for MinC source)
//
//	hirata-sim -machine mt -slots 4 -ls 2 -standby prog.s
//	hirata-sim -machine risc prog.s
//	hirata-sim -machine interp -dump-mem 100:110 prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hirata"
)

func main() {
	var (
		machine  = flag.String("machine", "mt", "machine model: mt, risc, or interp")
		slots    = flag.Int("slots", 1, "thread slots (mt)")
		ls       = flag.Int("ls", 1, "load/store units")
		standby  = flag.Bool("standby", true, "standby stations (mt)")
		width    = flag.Int("width", 1, "superscalar issue width per slot (mt)")
		rotation = flag.Int("rotation", 8, "priority rotation interval in cycles (mt)")
		explicit = flag.Bool("explicit", false, "start in explicit-rotation mode (mt)")
		frames   = flag.Int("frames", 0, "context frames (mt; 0 = one per slot)")
		threads  = flag.Int("threads", 1, "threads started at pc 0 (mt)")
		headroom = flag.Int("headroom", 4096, "extra data-memory words beyond the data image")
		dumpMem  = flag.String("dump-mem", "", "memory range to print after the run, e.g. 100:110")
		pipeline = flag.Bool("pipeline", false, "print a cycle-by-cycle pipeline event trace (mt)")
		verbose  = flag.Bool("v", false, "print full statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hirata-sim [flags] program.s")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	// .mc files are MinC source; everything else is assembly.
	var prog *hirata.Program
	if strings.HasSuffix(flag.Arg(0), ".mc") {
		prog, err = hirata.CompileMinC(string(src))
	} else {
		prog, err = hirata.Assemble(string(src))
	}
	if err != nil {
		fail(err)
	}
	m, err := prog.NewMemory(int64(*headroom))
	if err != nil {
		fail(err)
	}

	switch *machine {
	case "mt":
		cfg := hirata.MTConfig{
			ThreadSlots:      *slots,
			LoadStoreUnits:   *ls,
			StandbyStations:  *standby,
			IssueWidth:       *width,
			RotationInterval: *rotation,
			ExplicitRotation: *explicit,
			ContextFrames:    *frames,
		}
		pcs := make([]int64, *threads)
		hirata.SetMinCThreads(prog, m, *slots)
		var res hirata.MTResult
		if *pipeline {
			res, err = hirata.RunMTTraced(cfg, prog.Text, m, os.Stdout, pcs...)
		} else {
			res, err = hirata.RunMT(cfg, prog.Text, m, pcs...)
		}
		if err != nil {
			fail(err)
		}
		if *verbose {
			fmt.Print(res.String())
		} else {
			fmt.Printf("cycles=%d instructions=%d ipc=%.3f\n", res.Cycles, res.Instructions, res.IPC())
		}
	case "risc":
		res, err := hirata.RunRISC(hirata.RISCConfig{LoadStoreUnits: *ls}, prog.Text, m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("cycles=%d instructions=%d cpi=%.3f branches=%d\n",
			res.Cycles, res.Instructions, res.CPI(), res.Branches)
	case "interp":
		steps, err := hirata.Interpret(prog.Text, m)
		if err != nil {
			fail(err)
		}
		fmt.Printf("instructions=%d\n", steps)
	default:
		fail(fmt.Errorf("unknown machine %q", *machine))
	}

	if *dumpMem != "" {
		lo, hi, err := parseRange(*dumpMem)
		if err != nil {
			fail(err)
		}
		for a := lo; a < hi; a++ {
			v, err := m.Load(a)
			if err != nil {
				fail(err)
			}
			fmt.Printf("mem[%d] = %#016x (int %d, float %g)\n", a, v, int64(v), m.FloatAt(a))
		}
	}
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q, want LO:HI", s)
	}
	if lo, err = strconv.ParseInt(parts[0], 0, 64); err != nil {
		return
	}
	hi, err = strconv.ParseInt(parts[1], 0, 64)
	return
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hirata-sim:", err)
	os.Exit(1)
}
