// Command hirata-asm assembles programs to the 32-bit binary encoding and
// disassembles them back.
//
// Usage:
//
//	hirata-asm prog.s              # assemble, print listing
//	hirata-asm -o prog.bin prog.s  # assemble to binary
//	hirata-asm -d prog.bin         # disassemble binary
package main

import (
	"flag"
	"fmt"
	"os"

	"hirata"
	"hirata/internal/isa"
)

func main() {
	var (
		out     = flag.String("o", "", "write encoded binary to this file")
		dis     = flag.Bool("d", false, "disassemble a binary instead of assembling")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hirata-asm", hirata.Version())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hirata-asm [-o out.bin | -d] file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *dis {
		text, err := isa.DecodeProgram(data)
		if err != nil {
			fail(err)
		}
		fmt.Print(hirata.Disassemble(text))
		return
	}

	prog, err := hirata.Assemble(string(data))
	if err != nil {
		fail(err)
	}
	if *out != "" {
		bin, err := isa.EncodeProgram(prog.Text)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, bin, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d instructions (%d bytes) to %s\n", len(prog.Text), len(bin), *out)
		return
	}
	fmt.Print(hirata.Disassemble(prog.Text))
	if len(prog.Data) > 0 {
		fmt.Printf("; data image: %d initialised words, data end %d\n", len(prog.Data), prog.DataEnd)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hirata-asm:", err)
	os.Exit(1)
}
