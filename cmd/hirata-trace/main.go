// Command hirata-trace works with dynamic instruction traces — the
// simulation methodology of the paper's §3, which drives the timing
// simulator with traced instruction sequences.
//
// Usage:
//
//	hirata-trace -record prog.s -o prog.trace     # run + record
//	hirata-trace -stats prog.trace                # dynamic mix
//	hirata-trace -replay prog.trace -slots 4 -copies 4
//
// Replaying N copies of a trace on S thread slots measures multiprogrammed
// throughput exactly the way the paper measures its ray tracer. A replay
// can additionally export a Perfetto timeline (-chrome-trace) and an
// interval metrics time series (-metrics-interval); see
// docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"hirata"
	"hirata/internal/core"
	"hirata/internal/obs"
	"hirata/internal/trace"
)

func main() {
	var (
		record  = flag.String("record", "", "assembly program to run and record")
		out     = flag.String("o", "", "output trace file for -record")
		stats   = flag.String("stats", "", "trace file to summarise")
		replay  = flag.String("replay", "", "trace file to replay on the multithreaded machine")
		slots   = flag.Int("slots", 4, "thread slots for -replay")
		ls      = flag.Int("ls", 2, "load/store units for -replay")
		copies  = flag.Int("copies", 0, "trace copies to replay (default: one per slot)")
		standby = flag.Bool("standby", true, "standby stations for -replay")

		chromeTrace  = flag.String("chrome-trace", "", "write a Chrome Trace Event JSON timeline of the replay (load in ui.perfetto.dev)")
		metricsEvery = flag.Int("metrics-interval", 0, "sample interval metrics every N cycles during -replay and print the time series")
		cpiStack     = flag.Bool("cpi-stack", false, "print the per-slot CPI-stack cycle accounting of the replay")
		critPathOut  = flag.Bool("critpath", false, "print the replay's dynamic critical path with breakdown")
		whatIf       = flag.String("whatif", "", "comma-separated what-if scenarios to estimate from the replay, e.g. \"+1 alu,+1 ls,+1 slot\"")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hirata-trace", hirata.Version())
		return
	}

	switch {
	case *record != "":
		src, err := os.ReadFile(*record)
		check(err)
		prog, err := hirata.Assemble(string(src))
		check(err)
		m, err := prog.NewMemory(4096)
		check(err)
		recs, err := trace.RecordProgram(prog.Text, m, 0)
		check(err)
		if *out == "" {
			fmt.Print(trace.Stats(recs).String())
			return
		}
		f, err := os.Create(*out)
		check(err)
		check(trace.Write(f, recs))
		check(f.Close())
		fmt.Printf("recorded %d instructions to %s\n", len(recs), *out)

	case *stats != "":
		recs := load(*stats)
		fmt.Print(trace.Stats(recs).String())

	case *replay != "":
		recs := load(*replay)
		n := *copies
		if n <= 0 {
			n = *slots
		}
		in := make([]core.TraceInput, len(recs))
		for i, r := range recs {
			in[i] = core.TraceInput{Ins: r.Ins, Addr: r.Addr}
		}
		traces := make([][]core.TraceInput, n)
		for i := range traces {
			traces[i] = in
		}
		cfg := core.Config{
			ThreadSlots:     *slots,
			LoadStoreUnits:  *ls,
			StandbyStations: *standby,
		}
		p, err := core.NewTraceDriven(cfg, traces)
		check(err)
		var col *obs.Collector
		if *chromeTrace != "" || *metricsEvery > 0 || *cpiStack || *critPathOut || *whatIf != "" {
			col = obs.NewCollector(cfg, obs.Options{MetricsInterval: *metricsEvery})
			p.Observe(col)
		}
		res, err := p.Run()
		check(err)
		if col != nil {
			col.Finalize(res)
		}
		fmt.Printf("replayed %d x %d instructions on %d slots\n", n, len(recs), *slots)
		fmt.Print(res.String())
		if *chromeTrace != "" {
			f, err := os.Create(*chromeTrace)
			check(err)
			check(col.WriteChromeTrace(f))
			check(f.Close())
			fmt.Printf("wrote %s (load in ui.perfetto.dev)\n", *chromeTrace)
		}
		if *metricsEvery > 0 {
			fmt.Println()
			check(col.WriteIntervalTable(os.Stdout))
		}
		if *cpiStack {
			fmt.Println()
			check(col.CPIStack().WriteCPITable(os.Stdout))
		}
		if *critPathOut {
			cp, err := col.CritPath()
			check(err)
			fmt.Println()
			check(cp.WriteText(os.Stdout, nil))
		}
		if *whatIf != "" {
			ests, err := col.WhatIfAll(*whatIf)
			check(err)
			fmt.Println()
			fmt.Print(obs.FormatEstimates(ests))
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: hirata-trace -record prog.s [-o f] | -stats f | -replay f [-slots N -copies N]")
		os.Exit(2)
	}
}

func load(path string) []trace.Record {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	recs, err := trace.Read(f)
	check(err)
	return recs
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hirata-trace:", err)
		os.Exit(1)
	}
}
