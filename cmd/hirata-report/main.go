// Command hirata-report works with content-addressed run ledgers: the
// cross-run observability store hirata-sim -record and hirata-bench
// -ledger append to (docs/OBSERVABILITY.md, "Cross-run observability").
//
// Usage:
//
//	hirata-report record -ledger runs.ledger [flags] [program.s]
//	    simulate and append one fully decorated record (exact CPI stack +
//	    static bounds). Without a program operand the standard ray-trace
//	    workload is run.
//
//	hirata-report ls -ledger runs.ledger
//	    list stored records, oldest first.
//
//	hirata-report show -ledger runs.ledger <run>
//	    print one record's canonical envelope as JSON. <run> is a prefix of
//	    a content hash or run key.
//
//	hirata-report diff -ledger runs.ledger [<runA> <runB>]
//	    attribute the cycle delta between two records exactly across
//	    CPI-stack buckets and per-unit-class utilization. Without operands
//	    the two most recent records are compared.
//
//	hirata-report regress -ledger runs.ledger
//	hirata-report regress -history BENCH_history.jsonl
//	    walk a ledger lineage (tag, else run key) or a benchdiff history
//	    file and flag cycle-count / throughput shifts with attribution.
//	    Exits nonzero when shifts are found, for CI gating.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hirata"
	"hirata/internal/runledger"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "regress":
		err = cmdRegress(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	case "version", "-version":
		fmt.Println("hirata-report", hirata.Version())
		return
	default:
		fmt.Fprintf(os.Stderr, "hirata-report: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hirata-report:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hirata-report <command> [flags]

commands:
  record   simulate and append a decorated run record
  ls       list a ledger's records
  show     print one record as JSON
  diff     exact cycle-delta attribution between two records
  regress  flag shifts along a ledger lineage or bench history

run "hirata-report <command> -h" for command flags.`)
}

// cmdRecord simulates one run and appends its record. Unlike the RunMT*
// recording hook (which only sees what the run mode provides), record
// always runs observed and attaches both optional sections — the exact
// CPI stack and the static-bound certificate — before hashing, so the
// resulting record diffs at full precision.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		ledgerPath = fs.String("ledger", "", "ledger file to append to (required)")
		tag        = fs.String("tag", "", "lineage tag stored in the record")
		slots      = fs.Int("slots", 8, "thread slots")
		ls         = fs.Int("ls", 1, "load/store units")
		standby    = fs.Bool("standby", true, "standby stations")
		width      = fs.Int("width", 1, "superscalar issue width per slot")
		rotation   = fs.Int("rotation", 8, "priority rotation interval in cycles")
		frames     = fs.Int("frames", 0, "context frames (0 = one per slot)")
		threads    = fs.Int("threads", 1, "threads started at pc 0 (program operand only)")
		rays       = fs.Int("rays", 24, "rays in the default ray-trace workload")
		spheres    = fs.Int("spheres", 4, "spheres in the default ray-trace scene")
		headroom   = fs.Int("headroom", 4096, "extra data-memory words (program operand only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ledgerPath == "" {
		return fmt.Errorf("record: -ledger is required")
	}
	cfg := hirata.MTConfig{
		ThreadSlots:      *slots,
		LoadStoreUnits:   *ls,
		StandbyStations:  *standby,
		IssueWidth:       *width,
		RotationInterval: *rotation,
		ContextFrames:    *frames,
	}

	var (
		text []hirata.Instruction
		m    *hirata.Memory
		pcs  []int64
	)
	switch fs.NArg() {
	case 0:
		rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{Rays: *rays, Spheres: *spheres})
		if err != nil {
			return err
		}
		m, err = rt.NewMemory(rt.Par, cfg.Effective().ThreadSlots)
		if err != nil {
			return err
		}
		text = rt.Par.Text
	case 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		var prog *hirata.Program
		if strings.HasSuffix(fs.Arg(0), ".mc") {
			prog, err = hirata.CompileMinC(string(src))
		} else {
			prog, err = hirata.Assemble(string(src))
		}
		if err != nil {
			return err
		}
		m, err = prog.NewMemory(int64(*headroom))
		if err != nil {
			return err
		}
		hirata.SetMinCThreads(prog, m, *slots)
		text = prog.Text
		pcs = make([]int64, *threads)
	default:
		return fmt.Errorf("record: at most one program operand")
	}

	led, err := hirata.OpenRunLedger(*ledgerPath)
	if err != nil {
		return err
	}
	// Digest the inputs before the run mutates the memory image.
	pend := runledger.Begin(cfg, text, m, pcs)
	col := hirata.NewCollector(cfg, hirata.CollectorOptions{})
	res, err := hirata.RunMTObserved(cfg, text, m, []hirata.Observer{col}, pcs...)
	if err != nil {
		return err
	}
	rec := pend.Finish(res, *tag)
	hirata.AttachExactCPI(rec, col)
	hirata.AttachStaticBounds(rec, cfg, text, pcs...)
	hash, dup, err := led.Append(rec)
	if err != nil {
		return err
	}
	verb := "recorded"
	if dup {
		verb = "already recorded"
	}
	fmt.Printf("%s %s (key %s, tag %s) cycles=%d instructions=%d ipc=%.3f\n",
		verb, runledger.ShortKey(hash), runledger.ShortKey(rec.Key), orNone(*tag),
		res.Cycles, res.Instructions, res.IPC())
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	ledgerPath := fs.String("ledger", "", "ledger file to read (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	led, err := openExisting(*ledgerPath)
	if err != nil {
		return err
	}
	entries := led.Entries()
	if len(entries) == 0 {
		fmt.Println("ledger is empty")
		return nil
	}
	fmt.Printf("%-14s %-14s %-12s %5s %10s %12s %6s %s\n",
		"HASH", "KEY", "TAG", "SLOTS", "CYCLES", "INSTR", "IPC", "SECTIONS")
	for _, e := range entries {
		r := e.Record
		var secs []string
		if r.ExactCPI != nil {
			secs = append(secs, "exact-cpi")
		}
		if r.Bounds != nil {
			secs = append(secs, "bounds")
		}
		if r.HostProfileDigest != "" {
			secs = append(secs, "host")
		}
		fmt.Printf("%-14s %-14s %-12s %5d %10d %12d %6.3f %s\n",
			runledger.ShortKey(e.Hash), runledger.ShortKey(r.Key), orNone(r.Tag),
			len(r.Result.Slots), r.Result.Cycles, r.Result.Instructions, r.IPC(),
			strings.Join(secs, ","))
	}
	st := led.Stats()
	fmt.Printf("%d records, %d distinct run keys, %d canonical bytes\n", st.Records, st.Keys, st.Bytes)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	ledgerPath := fs.String("ledger", "", "ledger file to read (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: exactly one run selector required")
	}
	led, err := openExisting(*ledgerPath)
	if err != nil {
		return err
	}
	if _, err := led.Find(fs.Arg(0)); err != nil {
		return err
	}
	out, ok := led.RunJSON(fs.Arg(0))
	if !ok {
		return fmt.Errorf("show: no record matches %q", fs.Arg(0))
	}
	_, err = os.Stdout.Write(out)
	return err
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		ledgerPath = fs.String("ledger", "", "ledger file to read (required)")
		asJSON     = fs.Bool("json", false, "print the diff as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	led, err := openExisting(*ledgerPath)
	if err != nil {
		return err
	}
	var a, b runledger.Entry
	switch fs.NArg() {
	case 0:
		last := led.Last(2)
		if len(last) < 2 {
			return fmt.Errorf("diff: ledger holds %d record(s); need two (or name them)", len(last))
		}
		a, b = last[0], last[1]
	case 2:
		if a, err = led.Find(fs.Arg(0)); err != nil {
			return err
		}
		if b, err = led.Find(fs.Arg(1)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("diff: zero or two run selectors required")
	}
	d, err := runledger.Compute(a.Record, b.Record)
	if err != nil {
		return err
	}
	if *asJSON {
		return d.WriteJSON(os.Stdout)
	}
	fmt.Print(d.Format())
	return nil
}

func cmdRegress(args []string) error {
	fs := flag.NewFlagSet("regress", flag.ExitOnError)
	var (
		ledgerPath  = fs.String("ledger", "", "walk this ledger's lineages (tag, else run key)")
		historyPath = fs.String("history", "", "walk this benchdiff BENCH_history.jsonl instead")
		tolerance   = fs.Float64("tolerance", 0.0, "relative cycle-count change to ignore on ledger lineages (0 = flag any change)")
		window      = fs.Int("window", 5, "trailing-window size for -history")
		minRel      = fs.Float64("min-rel", 0.05, "relative change floor for -history shifts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *ledgerPath != "" && *historyPath != "":
		return fmt.Errorf("regress: -ledger and -history are mutually exclusive")
	case *ledgerPath != "":
		led, err := openExisting(*ledgerPath)
		if err != nil {
			return err
		}
		shifts := runledger.Regress(led.Entries(), *tolerance)
		if len(shifts) == 0 {
			fmt.Println("no shifts: every lineage is cycle-stable")
			return nil
		}
		runledger.WriteShifts(os.Stdout, shifts)
		return fmt.Errorf("%s", runledger.FormatShiftSummary(shifts))
	case *historyPath != "":
		rows, err := runledger.ReadHistory(*historyPath)
		if err != nil {
			return err
		}
		shifts := runledger.RegressHistory(rows, runledger.HistoryOptions{Window: *window, MinRel: *minRel})
		if len(shifts) == 0 {
			fmt.Printf("no shifts across %d history rows\n", len(rows))
			return nil
		}
		runledger.WriteHistoryShifts(os.Stdout, shifts)
		return fmt.Errorf("%d history shift(s) flagged", len(shifts))
	default:
		return fmt.Errorf("regress: one of -ledger or -history is required")
	}
}

// openExisting opens a ledger for inspection, refusing a missing file (an
// empty path or absent ledger is an operator error here, unlike record
// which creates one).
func openExisting(path string) (*hirata.RunLedger, error) {
	if path == "" {
		return nil, fmt.Errorf("-ledger is required")
	}
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return hirata.OpenRunLedger(path)
}

func orNone(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
