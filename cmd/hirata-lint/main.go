// Command hirata-lint statically verifies assembly (.s) and MinC (.mc)
// programs without running them: control-flow graph construction, register
// def-use dataflow, queue-register ring protocol checks, and — with
// -interthread — whole-program abstract interpretation (value ranges,
// happens-before, data-race and address-safety checks). See docs/LINT.md
// for the diagnostic catalogue.
//
// Usage:
//
//	hirata-lint prog.s kernel.mc        # lint individual files
//	hirata-lint examples/programs       # lint every .s/.mc under a directory
//	hirata-lint -interthread prog.s     # add the cross-thread checks L010..L014
//	hirata-lint -deadlock prog.s        # queue-protocol liveness checks L015..L017
//	hirata-lint -bound prog.s           # static lower bound on execution cycles
//	hirata-lint -model prog.s           # analytic model's static performance prediction
//	hirata-lint -json prog.s            # machine-readable findings
//	hirata-lint -sarif prog.s           # SARIF 2.1.0 for code-scanning upload
//	hirata-lint -entries 0,12 prog.s    # explicit thread entry PCs
//
// Exit status: 0 clean, 1 lint findings, 2 usage error, 3 an input failed
// to assemble or compile at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hirata"
	"hirata/internal/core"
	"hirata/internal/lint"
	"hirata/internal/minc"
	"hirata/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("hirata-lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		jsonOut  = flags.Bool("json", false, "emit findings as JSON")
		sarifOut = flags.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		entries  = flags.String("entries", "", "comma-separated thread entry PCs (default 0)")
		qdepth   = flags.Int("queue-depth", 0, "queue register FIFO depth assumed by the deadlock check (default 1)")
		inter    = flags.Bool("interthread", false, "run the cross-thread abstract interpretation (L010..L014)")
		deadlock = flags.Bool("deadlock", false, "run the queue-protocol liveness checks L015..L017 (implies -interthread)")
		bound    = flags.Bool("bound", false, "print the static lower bound on execution cycles per file")
		modelOut = flags.Bool("model", false, "print the analytic model's static-only performance prediction per file (docs/MODEL.md)")
		width    = flags.Int("issue-width", 1, "per-slot superscalar issue width assumed by -bound and -model")
		slots    = flags.Int("slots", 0, "thread slots assumed by -interthread, -deadlock, -bound and -model (default 4; a .lint slots directive in the program overrides)")
		memSize  = flags.Int64("mem-size", 0, "data-memory size in words for the out-of-range check (0 = size unknown)")
		version  = flags.Bool("version", false, "print build information and exit")
	)
	flags.Usage = func() {
		fmt.Fprintln(stderr, "usage: hirata-lint [-json|-sarif] [-interthread] [-deadlock] [-bound] [-model] [-slots n] [-issue-width n] [-mem-size words] [-entries pcs] [-queue-depth n] file-or-dir...")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "hirata-lint", hirata.Version())
		return 0
	}
	if flags.NArg() == 0 {
		flags.Usage()
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "hirata-lint: -json and -sarif are mutually exclusive")
		return 2
	}
	if (*bound || *modelOut) && (*jsonOut || *sarifOut) {
		fmt.Fprintln(stderr, "hirata-lint: -bound and -model write human-readable reports; they cannot be combined with -json or -sarif")
		return 2
	}

	cfg := lint.Config{
		QueueDepth:  *qdepth,
		InterThread: *inter || *deadlock,
		Deadlock:    *deadlock,
		ThreadSlots: *slots,
		MemWords:    *memSize,
	}
	if *entries != "" {
		for _, f := range strings.Split(*entries, ",") {
			pc, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(stderr, "hirata-lint: bad -entries value %q\n", f)
				return 2
			}
			cfg.Entries = append(cfg.Entries, pc)
		}
	}

	files, err := collectFiles(flags.Args())
	if err != nil {
		fmt.Fprintln(stderr, "hirata-lint:", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "hirata-lint: no .s or .mc files found")
		return 2
	}

	var all []lint.FileFinding
	report := func(file string, d lint.Diagnostic) {
		all = append(all, lint.FileFinding{File: file, Diag: d})
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stdout, "%s: %s\n", file, d)
		}
	}

	badInput := false
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "hirata-lint:", err)
			return 2
		}
		var prog *hirata.Program
		switch filepath.Ext(file) {
		case ".mc":
			prog, err = minc.Compile(string(src))
		default:
			prog, err = hirata.Assemble(string(src))
		}
		if err != nil {
			// Unparseable input is a different failure class from a lint
			// finding: the program could not be built at all, so none of
			// the checks ran. Report on stderr and keep going with the
			// other files; the exit status distinguishes the two.
			fmt.Fprintf(stderr, "hirata-lint: %s: does not build: %v\n", file, err)
			badInput = true
			continue
		}
		for _, d := range lint.AnalyzeProgram(prog, cfg) {
			report(file, d)
		}
		if *bound || *modelOut {
			machineSlots := cfg.ThreadSlots
			if machineSlots == 0 && prog.LintSlots > 0 {
				machineSlots = prog.LintSlots
			}
			if machineSlots == 0 {
				machineSlots = 4
			}
			if *bound {
				m := lint.Machine{ThreadSlots: machineSlots, IssueWidth: *width}
				b := lint.ComputeBounds(prog.Text, cfg.Entries, m)
				fmt.Fprintf(stdout, "%s: %s", file, b.Format())
			}
			if *modelOut {
				w := model.NewWorkload(file, prog.Text, cfg.Entries)
				p := w.Predict(core.Config{ThreadSlots: machineSlots, IssueWidth: *width})
				fmt.Fprintf(stdout, "%s: %s", file, p.Format())
			}
		}
	}

	switch {
	case *jsonOut:
		if all == nil {
			all = []lint.FileFinding{}
		}
		out, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "hirata-lint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	case *sarifOut:
		// One run covering every scanned file: clean files still appear
		// as run-level artifacts so code scanning knows they were covered.
		out, err := lint.MarshalSARIFFiles(files, all)
		if err != nil {
			fmt.Fprintln(stderr, "hirata-lint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	}

	switch {
	case badInput:
		return 3
	case len(all) > 0:
		return 1
	}
	return 0
}

// collectFiles expands the argument list: files are taken as-is, and
// directories are walked for .s and .mc sources.
func collectFiles(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && (strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".mc")) {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
