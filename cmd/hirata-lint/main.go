// Command hirata-lint statically verifies assembly (.s) and MinC (.mc)
// programs without running them: control-flow graph construction, register
// def-use dataflow, queue-register ring protocol checks, and whole-program
// checks. See docs/LINT.md for the diagnostic catalogue.
//
// Usage:
//
//	hirata-lint prog.s kernel.mc      # lint individual files
//	hirata-lint examples/programs     # lint every .s/.mc under a directory
//	hirata-lint -json prog.s          # machine-readable findings
//	hirata-lint -entries 0,12 prog.s  # explicit thread entry PCs
//
// Exit status: 0 clean, 1 findings (or unparseable input), 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"hirata"
	"hirata/internal/lint"
	"hirata/internal/minc"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		entries = flag.String("entries", "", "comma-separated thread entry PCs (default 0)")
		qdepth  = flag.Int("queue-depth", 0, "queue register FIFO depth assumed by the deadlock check (default 1)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hirata-lint [-json] [-entries pcs] [-queue-depth n] file-or-dir...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := lint.Config{QueueDepth: *qdepth}
	if *entries != "" {
		for _, f := range strings.Split(*entries, ",") {
			pc, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "hirata-lint: bad -entries value %q\n", f)
				os.Exit(2)
			}
			cfg.Entries = append(cfg.Entries, pc)
		}
	}

	files, err := collectFiles(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hirata-lint:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "hirata-lint: no .s or .mc files found")
		os.Exit(2)
	}

	type fileFinding struct {
		File string          `json:"file"`
		Diag lint.Diagnostic `json:"diag"`
	}
	var all []fileFinding
	report := func(file string, d lint.Diagnostic) {
		all = append(all, fileFinding{File: file, Diag: d})
		if !*jsonOut {
			fmt.Printf("%s: %s\n", file, d)
		}
	}

	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-lint:", err)
			os.Exit(2)
		}
		var prog *hirata.Program
		switch filepath.Ext(file) {
		case ".mc":
			prog, err = minc.Compile(string(src))
		default:
			prog, err = hirata.Assemble(string(src))
		}
		if err != nil {
			// Unparseable input is itself a finding: report it positioned
			// at the whole program and keep going with the other files.
			report(file, lint.Diagnostic{
				Code: lint.CodeBadTarget, Name: "parse-error", PC: -1, Msg: err.Error(),
			})
			continue
		}
		for _, d := range lint.AnalyzeProgram(prog, cfg) {
			report(file, d)
		}
	}

	if *jsonOut {
		if all == nil {
			all = []fileFinding{}
		}
		out, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-lint:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// collectFiles expands the argument list: files are taken as-is, and
// directories are walked for .s and .mc sources.
func collectFiles(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && (strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".mc")) {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
