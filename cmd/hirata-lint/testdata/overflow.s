; overflow.s — intentional L016 fixture.
; Slot 0 pushes twice toward slot 1, which never pops; with the default
; depth-1 FIFO the second push at pc 2 must stall forever. The consumer
; needs its own entry (pc 4, unreachable from slot 0): an entry block the
; producer can fall into would merge mapped and unmapped queue states and
; make the analysis bail out as uncertain.
; Lint with:  hirata-lint -deadlock -slots 2 -entries 0,4 overflow.s
	qen  r20, r21        ; pc 0: map the queue ring
	add  r21, r0, r0     ; pc 1: push 1 fills the FIFO
	add  r21, r0, r0     ; pc 2: push 2 — L016, consumer never pops
	halt                 ; pc 3: producer done
	halt                 ; pc 4: slot 1 entry; it never pops
