; deadlock.s — intentionally deadlocked L015 fixture.
; Slot 0 pops from its in-queue, but its ring producer (slot 1, entry at
; pc 4) never pushes anything: the pop at pc 1 blocks forever.
; Lint with:  hirata-lint -deadlock -slots 2 -entries 0,4 deadlock.s
	qen  r20, r21        ; pc 0: map the queue ring
	add  r1, r20, r0     ; pc 1: pop — L015, producer never pushes
	halt                 ; pc 2
	halt                 ; pc 3: padding, keeps both fixtures' consumer at pc 4
	halt                 ; pc 4: slot 1 entry, no queue use
