package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSrc = `
	li   r1, 7
	halt
`

// dirtySrc reads r2 before any definition (L001) but assembles fine.
const dirtySrc = `
	add  r1, r2, r2
	halt
`

// brokenSrc does not assemble at all.
const brokenSrc = `
	frobnicate r1, r2
`

// racySrc: two threads both store to the same word with no ordering.
const racySrc = `
	.data
out:	.word 0
	.text
	setmode 1
	ffork
	tid  r1
	la   r2, out
	sw   r1, 0(r2)
	halt
`

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	clean := writeTemp(t, "clean.s", cleanSrc)
	dirty := writeTemp(t, "dirty.s", dirtySrc)
	broken := writeTemp(t, "broken.s", brokenSrc)

	if code, _, _ := runLint(t, clean); code != 0 {
		t.Errorf("clean program: exit %d, want 0", code)
	}

	code, stdout, _ := runLint(t, dirty)
	if code != 1 {
		t.Errorf("dirty program: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "L001") {
		t.Errorf("dirty program stdout missing L001 finding:\n%s", stdout)
	}

	code, _, stderr := runLint(t, broken)
	if code != 3 {
		t.Errorf("unassemblable program: exit %d, want 3", code)
	}
	if !strings.Contains(stderr, "does not build") {
		t.Errorf("unassemblable program stderr missing message:\n%s", stderr)
	}

	// Assemble failure outranks lint findings when both occur.
	if code, _, _ := runLint(t, dirty, broken); code != 3 {
		t.Errorf("dirty+broken: exit %d, want 3", code)
	}

	if code, _, _ := runLint(t); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-json", "-sarif", clean); code != 2 {
		t.Errorf("-json -sarif: exit %d, want 2", code)
	}
}

func TestInterThreadFlag(t *testing.T) {
	racy := writeTemp(t, "racy.s", racySrc)

	// Without -interthread the race checks do not run.
	if code, stdout, _ := runLint(t, racy); code != 0 {
		t.Errorf("racy without -interthread: exit %d, want 0\n%s", code, stdout)
	}

	code, stdout, _ := runLint(t, "-interthread", racy)
	if code != 1 {
		t.Errorf("racy with -interthread: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "L010") {
		t.Errorf("racy -interthread stdout missing L010:\n%s", stdout)
	}
}

func TestMemSizeFlag(t *testing.T) {
	// A store beyond a 16-word memory is only catchable when the size is
	// declared.
	src := `
	li   r1, 100
	sw   r1, 0(r1)
	lw   r2, 0(r1)
	halt
`
	p := writeTemp(t, "oob.s", src)
	if code, _, _ := runLint(t, "-interthread", p); code != 0 {
		t.Errorf("oob without -mem-size: exit %d, want 0", code)
	}
	code, stdout, _ := runLint(t, "-interthread", "-mem-size", "16", p)
	if code != 1 {
		t.Errorf("oob with -mem-size 16: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "L011") {
		t.Errorf("oob stdout missing L011:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	dirty := writeTemp(t, "dirty.s", dirtySrc)
	code, stdout, _ := runLint(t, "-json", dirty)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var got []struct {
		File string `json:"file"`
		Diag struct {
			Code string `json:"code"`
		} `json:"diag"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if len(got) == 0 || got[0].Diag.Code != "L001" {
		t.Errorf("JSON findings = %+v, want L001 first", got)
	}
}

func TestSARIFOutput(t *testing.T) {
	dirty := writeTemp(t, "dirty.s", dirtySrc)
	code, stdout, _ := runLint(t, "-sarif", dirty)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "hirata-lint" {
		t.Fatalf("SARIF runs/tool malformed: %+v", log.Runs)
	}
	if n := len(log.Runs[0].Tool.Driver.Rules); n != 17 {
		t.Errorf("SARIF rule count = %d, want 17 (L001..L017)", n)
	}
	rs := log.Runs[0].Results
	if len(rs) == 0 || rs[0].RuleID != "L001" {
		t.Fatalf("SARIF results = %+v, want an L001 result", rs)
	}
	if len(rs[0].Locations) == 0 || rs[0].Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
		t.Errorf("SARIF result missing artifact location: %+v", rs[0])
	}

	// A clean run still emits a valid, empty SARIF log (needed so the CI
	// upload step always has a file).
	clean := writeTemp(t, "clean.s", cleanSrc)
	code, stdout, _ = runLint(t, "-sarif", clean)
	if code != 0 {
		t.Fatalf("clean -sarif exit %d, want 0", code)
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("bad clean SARIF: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean SARIF should have one run with zero results")
	}
}

// sarifLog mirrors the slice of SARIF 2.1.0 the golden fixture test needs:
// one run, per-file artifact entries, and results whose locations carry
// both the artifact index and the source line.
type sarifLog struct {
	Runs []struct {
		Artifacts []struct {
			Location struct {
				URI string `json:"uri"`
			} `json:"location"`
		} `json:"artifacts"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI   string `json:"uri"`
						Index *int   `json:"index"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestDeadlockFixturesSARIF pins the L015/L016 diagnostics for the shipped
// intentionally-deadlocked fixtures: rule, file, artifact index, and source
// line are all part of the contract (CI consumes this SARIF directly).
func TestDeadlockFixturesSARIF(t *testing.T) {
	deadlock := filepath.Join("testdata", "deadlock.s")
	overflow := filepath.Join("testdata", "overflow.s")
	code, stdout, stderr := runLint(t,
		"-deadlock", "-slots", "2", "-entries", "0,4", "-sarif",
		deadlock, overflow)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v\n%s", err, stdout)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF runs = %d, want exactly 1", len(log.Runs))
	}
	run := log.Runs[0]
	if len(run.Artifacts) != 2 ||
		run.Artifacts[0].Location.URI != deadlock ||
		run.Artifacts[1].Location.URI != overflow {
		t.Fatalf("artifacts = %+v, want [%s %s]", run.Artifacts, deadlock, overflow)
	}

	want := []struct {
		rule string
		uri  string
		idx  int
		line int
	}{
		{"L015", deadlock, 0, 6},
		{"L016", overflow, 1, 10},
	}
	if len(run.Results) != len(want) {
		t.Fatalf("results = %d, want %d:\n%s", len(run.Results), len(want), stdout)
	}
	for i, w := range want {
		r := run.Results[i]
		if r.RuleID != w.rule {
			t.Errorf("result %d rule = %s, want %s", i, r.RuleID, w.rule)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != w.uri {
			t.Errorf("result %d uri = %s, want %s", i, loc.ArtifactLocation.URI, w.uri)
		}
		if loc.ArtifactLocation.Index == nil || *loc.ArtifactLocation.Index != w.idx {
			t.Errorf("result %d artifact index = %v, want %d", i, loc.ArtifactLocation.Index, w.idx)
		}
		if loc.Region.StartLine != w.line {
			t.Errorf("result %d line = %d, want %d", i, loc.Region.StartLine, w.line)
		}
	}
}

// TestBoundFlag smoke-tests the human-readable bound report.
func TestBoundFlag(t *testing.T) {
	clean := writeTemp(t, "clean.s", cleanSrc)
	code, stdout, _ := runLint(t, "-bound", clean)
	if code != 0 {
		t.Fatalf("-bound exit %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "static lower bound") {
		t.Errorf("-bound output missing report:\n%s", stdout)
	}
	if code, _, _ := runLint(t, "-bound", "-sarif", clean); code != 2 {
		t.Errorf("-bound -sarif: exit %d, want 2", code)
	}
}
