// Command hirata-cc compiles MinC — a small C-like kernel language — to
// the machine's assembly, and optionally runs the result. The paper's
// workloads were produced by a commercial C compiler; MinC is this
// repository's equivalent substrate (see docs/MINC.md).
//
// Usage:
//
//	hirata-cc kernel.mc               # print generated assembly
//	hirata-cc -run kernel.mc          # compile and run (multithreaded)
//	hirata-cc -run -slots 8 -ls 2 kernel.mc
//	hirata-cc -run -dump name kernel.mc   # print a global after the run
package main

import (
	"flag"
	"fmt"
	"os"

	"hirata"
	"hirata/internal/minc"
)

func main() {
	var (
		run     = flag.Bool("run", false, "run the compiled program on the multithreaded machine")
		slots   = flag.Int("slots", 4, "thread slots for -run")
		ls      = flag.Int("ls", 2, "load/store units for -run")
		dump    = flag.String("dump", "", "comma-free global name to print after -run")
		dumpN   = flag.Int("dump-n", 1, "number of words to print from -dump")
		verbose = flag.Bool("v", false, "print full statistics after -run")
		doLint  = flag.Bool("lint", false, "run the static verifier over the generated code")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hirata-cc", hirata.Version())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hirata-cc [-run] [-lint] kernel.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	check(err)

	if !*run {
		text, err := minc.CompileToAsm(string(src))
		check(err)
		if *doLint {
			lintGenerated(text)
		}
		fmt.Print(text)
		return
	}

	prog, err := minc.Compile(string(src))
	check(err)
	if *doLint {
		if ds := hirata.Lint(prog); len(ds) != 0 {
			for _, d := range ds {
				fmt.Fprintln(os.Stderr, "hirata-cc: lint:", d)
			}
			os.Exit(1)
		}
	}
	m, err := prog.NewMemory(4096)
	check(err)
	minc.SetThreads(prog, m, *slots)
	res, err := hirata.RunMT(hirata.MTConfig{
		ThreadSlots:     *slots,
		LoadStoreUnits:  *ls,
		StandbyStations: true,
	}, prog.Text, m)
	check(err)
	if *verbose {
		fmt.Print(res.String())
	} else {
		fmt.Printf("cycles=%d instructions=%d ipc=%.3f\n", res.Cycles, res.Instructions, res.IPC())
	}
	if *dump != "" {
		addr, ok := prog.Symbol(*dump)
		if !ok {
			check(fmt.Errorf("unknown global %q", *dump))
		}
		for i := 0; i < *dumpN; i++ {
			v, err := m.Load(addr + int64(i))
			check(err)
			fmt.Printf("%s[%d] = %d (float %g)\n", *dump, i, int64(v), m.FloatAt(addr+int64(i)))
		}
	}
}

// lintGenerated verifies compiler output that is only being printed: the
// diagnostics go to stderr (with positions into the generated assembly)
// and a finding makes the compile fail.
func lintGenerated(text string) {
	prog, err := hirata.Assemble(text)
	check(err)
	if ds := hirata.Lint(prog); len(ds) != 0 {
		for _, d := range ds {
			fmt.Fprintln(os.Stderr, "hirata-cc: lint:", d)
		}
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hirata-cc:", err)
		os.Exit(1)
	}
}
