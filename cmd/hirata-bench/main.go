// Command hirata-bench regenerates the evaluation of Hirata et al. (ISCA
// 1992): Tables 2-5 and the in-text experiments (rotation-interval sweep,
// private instruction caches, functional-unit utilization), plus this
// repository's extensions (finite caches, queue-register depth, concurrent
// multithreading). Each table prints paper-reported values next to the
// values measured on this simulator.
//
// Usage:
//
//	hirata-bench                 # everything
//	hirata-bench -table 2        # one table
//	hirata-bench -extras         # extension experiments only
//	hirata-bench -rays 240 -n 400 -nodes 200   # workload sizes
//	hirata-bench -parallel 1     # sequential reference run (default: all CPUs)
//
// Observability (see docs/OBSERVABILITY.md):
//
//	hirata-bench -chrome-trace rt.json   # Perfetto timeline of the 8-slot ray-trace run
//	hirata-bench -http :8080             # live /metrics + pprof while the tables run
//	hirata-bench -ledger runs.ledger     # record every cell into a content-addressed
//	                                     # run ledger (inspect with hirata-report)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hirata"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to run: 2, 3, 4, 5, or all")
		extras  = flag.Bool("extras", false, "run only the extension experiments")
		rays    = flag.Int("rays", 240, "rays in the ray-tracing workload (Tables 2, 3)")
		spheres = flag.Int("spheres", 12, "spheres in the ray-tracing scene")
		n       = flag.Int("n", 400, "Livermore Kernel 1 iterations (Table 4)")
		nodes   = flag.Int("nodes", 200, "linked-list length (Table 5)")
		curve   = flag.Bool("curve", false, "print the slots-vs-speed-up sweep as CSV and exit")
		asJSON  = flag.Bool("json", false, "print Tables 2-5 and the speed-up curve as JSON and exit")

		chromeTrace = flag.String("chrome-trace", "", "record the representative 8-slot ray-trace run and write its Chrome Trace Event JSON timeline here")
		httpAddr    = flag.String("http", "", "serve live /metrics, /trace.json and pprof of the bench process on this address")
		parallel    = flag.Int("parallel", 0, "simulation cells to run concurrently (0 = GOMAXPROCS worth, 1 = sequential reference)")

		cpiFolded    = flag.String("cpi-folded", "", "record the representative run and write its CPI stack in collapsed/folded format here")
		critPathJSON = flag.String("critpath-json", "", "record the representative run and write its critical-path analysis as JSON here")
		whatIf       = flag.String("whatif", "", "record the representative run and print bounded what-if estimates, e.g. \"+1 alu,+1 ls,+1 slot\"")

		explore       = flag.Bool("explore", false, "search the design space with the analytic model, re-simulate the Pareto frontier, and validate the model against Tables 2-5 (docs/MODEL.md)")
		exploreJSON   = flag.String("explore-json", "", "with -explore, also write the exploration + validation report as JSON here")
		exploreMaxErr = flag.Float64("explore-max-err", 0, "with -explore, exit nonzero if any model error (frontier or Tables 2-5) exceeds this percentage (0 = no gate)")

		ledgerPath = flag.String("ledger", "", "append every simulation this process runs (table cells, sweep workers, explore re-sims) to this content-addressed run ledger (inspect with hirata-report)")
		runTag     = flag.String("run-tag", "", "lineage tag stored in recorded run records (with -ledger)")

		selfProfile     = flag.Bool("self-profile", false, "profile the simulator itself on the representative 8-slot ray trace: cycle-loop phase breakdown plus the dirty-set opportunity report (docs/OBSERVABILITY.md)")
		hostTrace       = flag.String("host-trace", "", "with -self-profile, write the host-side Chrome Trace Event JSON (cycle-loop phases + sweep workers) here")
		selfProfileJSON = flag.String("self-profile-json", "", "with -self-profile, write the phase profile and opportunity report as JSON here")
		version         = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hirata-bench", hirata.Version())
		return
	}
	hirata.SetParallelism(*parallel)

	if *ledgerPath != "" {
		led, err := hirata.OpenRunLedger(*ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		hirata.SetRunLedger(led, *runTag)
		defer func() {
			if err := hirata.RunLedgerError(); err != nil {
				fmt.Fprintln(os.Stderr, "hirata-bench: run ledger:", err)
				os.Exit(1)
			}
			st := led.Stats()
			fmt.Fprintf(os.Stderr, "hirata-bench: ledger %s now holds %d records (%d appended, %d deduped this run)\n",
				*ledgerPath, st.Records, st.Appends, st.DedupHits)
		}()
	}

	rt := hirata.RayTraceConfig{Rays: *rays, Spheres: *spheres}
	if *selfProfile {
		if err := runSelfProfile(os.Stdout, rt, selfProfileOutputs{
			tracePath: *hostTrace,
			jsonPath:  *selfProfileJSON,
			httpAddr:  *httpAddr,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *explore {
		if err := runExplore(os.Stdout, rt, *n, *nodes, *exploreJSON, *exploreMaxErr); err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *chromeTrace != "" || *httpAddr != "" || *cpiFolded != "" || *critPathJSON != "" || *whatIf != "" {
		shutdown, err := recordRepresentative(rt, representativeOutputs{
			tracePath:    *chromeTrace,
			httpAddr:     *httpAddr,
			cpiFolded:    *cpiFolded,
			critPathJSON: *critPathJSON,
			whatIf:       *whatIf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		if shutdown != nil {
			defer func() { _ = shutdown() }()
		}
	}
	if *asJSON {
		rep, err := hirata.RunFullReport(rt, *n, *nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	if *curve {
		cells, err := hirata.RunSpeedupCurve(rt, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hirata-bench:", err)
			os.Exit(1)
		}
		fmt.Print(hirata.FormatSpeedupCurveCSV(cells))
		return
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "hirata-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	wantTable := func(t string) bool { return !*extras && (*table == "all" || *table == t) }

	if wantTable("2") {
		run("table 2", func() error {
			tb, err := hirata.RunTable2(hirata.Table2Config{Workload: rt})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatTable2(tb))
			return nil
		})
		run("utilization", func() error {
			res, err := hirata.UtilizationReport(rt, 8, 1)
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatUtilization(res, 8, 1))
			return nil
		})
		run("rotation sweep", func() error {
			cells, err := hirata.RunRotationSweep(rt, 4, 1)
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatRotationSweep(cells))
			return nil
		})
		run("private icache", func() error {
			cells, err := hirata.RunPrivateICache(rt)
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatPrivateICache(cells))
			return nil
		})
	}
	if wantTable("3") {
		run("table 3", func() error {
			tb, err := hirata.RunTable3(hirata.Table3Config{Workload: rt})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatTable3(tb))
			return nil
		})
	}
	if wantTable("4") {
		run("table 4", func() error {
			tb, err := hirata.RunTable4(hirata.Table4Config{N: *n})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatTable4(tb))
			return nil
		})
	}
	if wantTable("5") {
		run("table 5", func() error {
			tb, err := hirata.RunTable5(hirata.Table5Config{Nodes: *nodes})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatTable5(tb))
			return nil
		})
	}

	if *extras || *table == "all" {
		run("finite cache", func() error {
			cells, err := hirata.RunFiniteCache(rt, 4, []int{1024, 256, 64, 16})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatFiniteCache(cells, 4))
			return nil
		})
		run("queue depth", func() error {
			cells, err := hirata.RunQueueDepthAblation(*nodes, 4, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatQueueDepth(cells, 4))
			return nil
		})
		run("concurrent multithreading", func() error {
			cells, err := hirata.RunConcurrentMT(4, []int{4}, 300)
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatConcurrentMT(cells))
			return nil
		})
		run("doacross", func() error {
			cells, seq, err := hirata.RunDoacross(*n, []int{1, 2, 3, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatDoacross(cells, seq, *n))
			return nil
		})
		run("issue bandwidth", func() error {
			cells, err := hirata.RunIssueBandwidth(rt, []int{2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatIssueBandwidth(cells))
			return nil
		})
		run("swp ablation", func() error {
			cells, err := hirata.RunSWPAblation(*n, []int{1, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatSWPAblation(cells))
			return nil
		})
		run("standby depth", func() error {
			cells, err := hirata.RunStandbyDepth(rt, 4, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatStandbyDepth(cells, 4))
			return nil
		})
		run("unrolling", func() error {
			cells, err := hirata.RunUnrollAblation(384, []int{1, 2, 4, 8}, []int{1, 2, 3})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatUnroll(cells))
			return nil
		})
		run("branch hiding", func() error {
			cells, seq, err := hirata.RunBranchHiding([]int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatBranchHiding(cells, seq))
			return nil
		})
		run("multiprogramming", func() error {
			cells, err := hirata.RunMultiprogram([]int{2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Print(hirata.FormatMultiprogram(cells))
			return nil
		})
	}
}

// representativeOutputs selects the artifacts of the representative run.
type representativeOutputs struct {
	tracePath    string // Perfetto timeline JSON
	httpAddr     string // live observability server
	cpiFolded    string // folded CPI stacks (flamegraph.pl input)
	critPathJSON string // critical-path analysis JSON
	whatIf       string // comma-separated what-if scenario list
}

// recordRepresentative runs the parallel ray tracer on the paper's 8-slot
// machine with a collector attached — the same configuration Table 2
// measures — and writes whichever artifacts out selects: the Perfetto
// timeline, folded CPI stacks, the critical-path JSON, bounded what-if
// estimates, and/or a live HTTP server. The returned shutdown stops the
// HTTP server; it is nil when httpAddr is empty.
func recordRepresentative(rt hirata.RayTraceConfig, out representativeOutputs) (func() error, error) {
	w, err := hirata.BuildRayTrace(rt)
	if err != nil {
		return nil, err
	}
	cfg := hirata.MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	m, err := w.NewMemory(w.Par, cfg.ThreadSlots)
	if err != nil {
		return nil, err
	}
	col := hirata.NewCollector(cfg, hirata.CollectorOptions{MetricsInterval: 256})
	var shutdown func() error
	if out.httpAddr != "" {
		bound, stop, err := hirata.ServeObservability(out.httpAddr, col, w.Par)
		if err != nil {
			return nil, err
		}
		shutdown = stop
		fmt.Fprintf(os.Stderr, "hirata-bench: serving observability at http://%s\n", bound)
	}
	res, err := hirata.RunMTObserved(cfg, w.Par.Text, m, []hirata.Observer{col})
	if err != nil {
		return shutdown, err
	}
	fmt.Fprintf(os.Stderr, "hirata-bench: recorded 8-slot ray trace: %d cycles, ipc %.3f\n", res.Cycles, res.IPC())
	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			return err
		}
		return f.Close()
	}
	if out.tracePath != "" {
		if err := writeFile(out.tracePath, col.WriteChromeTrace); err != nil {
			return shutdown, err
		}
		fmt.Fprintf(os.Stderr, "hirata-bench: wrote %s (load in ui.perfetto.dev)\n", out.tracePath)
	}
	if out.cpiFolded != "" {
		if err := writeFile(out.cpiFolded, col.CPIStack().WriteCPIFolded); err != nil {
			return shutdown, err
		}
		fmt.Fprintf(os.Stderr, "hirata-bench: wrote %s (feed to flamegraph.pl or speedscope)\n", out.cpiFolded)
	}
	if out.critPathJSON != "" {
		cp, err := col.CritPath()
		if err != nil {
			return shutdown, err
		}
		cp.Annotate(w.Par)
		if err := writeFile(out.critPathJSON, cp.WriteJSON); err != nil {
			return shutdown, err
		}
		fmt.Fprintf(os.Stderr, "hirata-bench: wrote %s\n", out.critPathJSON)
	}
	if out.whatIf != "" {
		ests, err := col.WhatIfAll(out.whatIf)
		if err != nil {
			return shutdown, err
		}
		fmt.Fprint(os.Stderr, hirata.FormatWhatIfEstimates(ests))
	}
	return shutdown, nil
}
