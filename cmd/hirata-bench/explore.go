package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hirata"
)

// exploreArtifact is the JSON artifact -explore-json writes: the
// design-space search plus the Tables 2-5 model validation.
type exploreArtifact struct {
	Explore    *hirata.ExploreReport   `json:"explore"`
	Validation *hirata.ModelValidation `json:"validation"`
}

// runExplore drives the analytic design-space search: predict the whole
// grid, re-simulate the Pareto frontier, validate the model against
// Tables 2-5 reproductions at the bench's workload sizes, and optionally
// gate on the worst error.
func runExplore(w io.Writer, rt hirata.RayTraceConfig, lk1N, listNodes int, jsonPath string, maxErr float64) error {
	rep, err := hirata.RunExplore(hirata.ExploreConfig{Workload: rt})
	if err != nil {
		return fmt.Errorf("explore: %w", err)
	}
	fmt.Fprint(w, rep.Format())
	fmt.Fprintln(w)

	val, err := hirata.ValidateModel(hirata.ModelValidationConfig{
		Rays:      rt.Rays,
		Spheres:   rt.Spheres,
		LK1N:      lk1N,
		ListNodes: listNodes,
	})
	if err != nil {
		return fmt.Errorf("model validation: %w", err)
	}
	fmt.Fprint(w, val.Format())

	if jsonPath != "" {
		out, err := json.MarshalIndent(exploreArtifact{Explore: rep, Validation: val}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}

	if rep.BoundViolations > 0 || val.BoundViolations > 0 {
		return fmt.Errorf("predictions below the certified lower bound: explore=%d validation=%d",
			rep.BoundViolations, val.BoundViolations)
	}
	if maxErr > 0 {
		worst := rep.MaxAbsErrPct
		if val.MaxAbsErrPct > worst {
			worst = val.MaxAbsErrPct
		}
		if worst > maxErr {
			return fmt.Errorf("model error %.1f%% exceeds -explore-max-err %.1f%%", worst, maxErr)
		}
		fmt.Fprintf(w, "\nmodel error gate: worst %.1f%% <= %.1f%% threshold\n", worst, maxErr)
	}
	return nil
}
