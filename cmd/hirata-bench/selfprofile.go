package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"

	"hirata"
)

// selfProfileOutputs selects the artifacts of a -self-profile run.
type selfProfileOutputs struct {
	tracePath string // host Chrome Trace Event JSON
	jsonPath  string // machine-readable phase profile + opportunity report
	httpAddr  string // serve /metrics and /hostmetrics until interrupted
}

// runSelfProfile turns the simulator's observability on itself: it runs the
// representative 8-slot ray trace (the Table 2 configuration) with the host
// profiler attached, runs the speed-up sweep with sweep telemetry recording
// worker timelines, and prints the cycle-loop phase profile plus the
// dirty-set opportunity report. The profiler leaves quiescent-cycle
// skipping armed, so the profiled run is cycle-identical to an unprofiled
// one (unless -http attaches a pipeline collector, which disables skipping
// as it always has).
func runSelfProfile(w io.Writer, rt hirata.RayTraceConfig, out selfProfileOutputs) error {
	prof := hirata.NewHostProfiler(hirata.HostProfilerOptions{})
	rec := hirata.NewSweepRecorder()
	hirata.SetSweepTelemetry(rec)
	defer hirata.SetSweepTelemetry(nil)

	wl, err := hirata.BuildRayTrace(rt)
	if err != nil {
		return err
	}
	cfg := hirata.MTConfig{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}
	m, err := wl.NewMemory(wl.Par, cfg.ThreadSlots)
	if err != nil {
		return err
	}

	var shutdown func() error
	var res hirata.MTResult
	if out.httpAddr != "" {
		col := hirata.NewCollector(cfg, hirata.CollectorOptions{MetricsInterval: 256})
		bound, stop, serr := hirata.ServeObservabilityWithHost(out.httpAddr, col, wl.Par,
			hirata.HostExport{Prof: prof, Sweep: rec})
		if serr != nil {
			return serr
		}
		shutdown = stop
		fmt.Fprintf(os.Stderr, "hirata-bench: serving /metrics and /hostmetrics at http://%s\n", bound)
		res, err = hirata.RunMTProfiledObserved(cfg, wl.Par.Text, m, []hirata.Observer{col}, prof)
	} else {
		res, err = hirata.RunMTHostProfiled(cfg, wl.Par.Text, m, prof)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hirata-bench: profiled 8-slot ray trace: %d cycles, ipc %.3f\n",
		res.Cycles, res.IPC())

	// Exercise the sweep engine under telemetry so the host trace and
	// /hostmetrics carry worker timelines too.
	if _, err := hirata.RunSpeedupCurve(rt, 8); err != nil {
		return err
	}

	fmt.Fprintln(w, prof.Profile().Format())
	fmt.Fprintln(w, prof.Opportunity().Format())

	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			return err
		}
		return f.Close()
	}
	if out.tracePath != "" {
		if err := writeFile(out.tracePath, func(f io.Writer) error {
			return hirata.WriteHostTrace(f, prof, rec)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hirata-bench: wrote %s (load in ui.perfetto.dev)\n", out.tracePath)
	}
	if out.jsonPath != "" {
		if err := writeFile(out.jsonPath, prof.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hirata-bench: wrote %s\n", out.jsonPath)
	}
	if shutdown != nil {
		fmt.Fprintln(os.Stderr, "hirata-bench: profile served; interrupt (ctrl-C) to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		return shutdown()
	}
	return nil
}
