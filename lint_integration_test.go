package hirata_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hirata"
)

// TestWorkloadsLintClean runs the static verifier over every paper
// workload program; the generators must emit protocol-clean code.
func TestWorkloadsLintClean(t *testing.T) {
	progs := map[string]*hirata.Program{}

	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["raytrace-seq"], progs["raytrace-par"] = rt.Seq, rt.Par

	lk, err := hirata.BuildLivermore(hirata.LivermoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["livermore-seq"], progs["livermore-par"] = lk.Seq, lk.Par

	ll, err := hirata.BuildLinkedList(hirata.LinkedListConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["linkedlist-seq"], progs["linkedlist-par"] = ll.Seq, ll.Par

	rc, err := hirata.BuildRecurrence(hirata.RecurrenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["recurrence-seq"], progs["recurrence-par"] = rc.Seq, rc.Par

	rd, err := hirata.BuildRadiosity(hirata.RadiosityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["radiosity"] = rd.Prog

	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			for _, d := range hirata.Lint(p) {
				t.Errorf("%s: %v", name, d)
			}
		})
	}
}

// TestWorkloadsDeadlockClean runs the queue-protocol deadlock verifier
// (L015-L017, docs/LINT.md) over every paper workload: the generators'
// queue rings must be provably free of ring deadlocks, overflows and
// unbounded spins. CI runs this alongside `hirata-lint -deadlock` over the
// shipped examples (make lint-bounds).
func TestWorkloadsDeadlockClean(t *testing.T) {
	progs := map[string]*hirata.Program{}

	rt, err := hirata.BuildRayTrace(hirata.RayTraceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["raytrace-seq"], progs["raytrace-par"] = rt.Seq, rt.Par

	lk, err := hirata.BuildLivermore(hirata.LivermoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["livermore-seq"], progs["livermore-par"] = lk.Seq, lk.Par

	ll, err := hirata.BuildLinkedList(hirata.LinkedListConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["linkedlist-seq"], progs["linkedlist-par"] = ll.Seq, ll.Par

	rc, err := hirata.BuildRecurrence(hirata.RecurrenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["recurrence-seq"], progs["recurrence-par"] = rc.Seq, rc.Par

	rd, err := hirata.BuildRadiosity(hirata.RadiosityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	progs["radiosity"] = rd.Prog

	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			cfg := hirata.LintConfig{InterThread: true, Deadlock: true}
			for _, d := range hirata.LintWithConfig(p, cfg) {
				t.Errorf("%s: %v", name, d)
			}
		})
	}
}

// TestExampleMinCLintClean compiles every shipped MinC example and
// verifies the generated code.
func TestExampleMinCLintClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "programs", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no MinC examples found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := hirata.CompileMinC(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, d := range hirata.Lint(p) {
				t.Errorf("%s: %v", filepath.Base(path), d)
			}
		})
	}
}

// TestStrictVerify checks the StrictVerify run gate on both machines.
func TestStrictVerify(t *testing.T) {
	bad := hirata.Program{}
	{
		p, err := hirata.Assemble("\tadd r3, r1, r2\n") // uninit reads, no halt
		if err != nil {
			t.Fatal(err)
		}
		bad = *p
	}
	good, err := hirata.Assemble("\tli r1, 2\n\tadd r2, r1, r1\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := hirata.RunMT(hirata.MTConfig{StrictVerify: true}, bad.Text, hirata.NewMemory(16)); err == nil {
		t.Error("RunMT(StrictVerify) accepted a bad program")
	} else if !strings.Contains(err.Error(), "L001") {
		t.Errorf("RunMT error does not carry diagnostics: %v", err)
	}
	if _, err := hirata.RunMT(hirata.MTConfig{StrictVerify: true}, good.Text, hirata.NewMemory(16)); err != nil {
		t.Errorf("RunMT(StrictVerify) rejected a clean program: %v", err)
	}

	if _, err := hirata.RunRISC(hirata.RISCConfig{StrictVerify: true}, bad.Text, hirata.NewMemory(16)); err == nil {
		t.Error("RunRISC(StrictVerify) accepted a bad program")
	}
	if _, err := hirata.RunRISC(hirata.RISCConfig{StrictVerify: true}, good.Text, hirata.NewMemory(16)); err != nil {
		t.Errorf("RunRISC(StrictVerify) rejected a clean program: %v", err)
	}
}
