package hirata

import (
	"encoding/json"
	"fmt"
)

// Report aggregates the paper-reproduction measurements in a
// machine-readable form (see cmd/hirata-bench -json).
type Report struct {
	// Workload is the ray-tracing configuration used for Tables 2 and 3.
	Workload RayTraceConfig
	Table2   *Table2
	Table3   *Table3
	Table4   *Table4
	Table5   *Table5
	Curve    []CurveCell
}

// RunFullReport runs Tables 2-5 and the speed-up curve with the given
// workload sizes.
func RunFullReport(w RayTraceConfig, lk1N, listNodes int) (*Report, error) {
	r := &Report{Workload: w}
	var err error
	if r.Table2, err = RunTable2(Table2Config{Workload: w}); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	if r.Table3, err = RunTable3(Table3Config{Workload: w}); err != nil {
		return nil, fmt.Errorf("table 3: %w", err)
	}
	if r.Table4, err = RunTable4(Table4Config{N: lk1N}); err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	if r.Table5, err = RunTable5(Table5Config{Nodes: listNodes}); err != nil {
		return nil, fmt.Errorf("table 5: %w", err)
	}
	if r.Curve, err = RunSpeedupCurve(w, 8); err != nil {
		return nil, fmt.Errorf("curve: %w", err)
	}
	return r, nil
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
