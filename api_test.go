package hirata

// End-to-end tests of the public facade: every exported entry point is
// exercised at least once through realistic use.

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFacadeAssembleRunInterpret(t *testing.T) {
	prog, err := Assemble(`
		li   r1, 6
		mul  r2, r1, r1
		sw   r2, 100(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(prog.Text)
	if !strings.Contains(dis, "mul r2, r1, r1") {
		t.Errorf("Disassemble missing mul:\n%s", dis)
	}

	m := NewMemory(128)
	steps, err := Interpret(prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 || m.IntAt(100) != 36 {
		t.Errorf("Interpret: steps=%d mem=%d", steps, m.IntAt(100))
	}

	m2 := NewMemory(128)
	res, err := RunMT(MTConfig{ThreadSlots: 1, StandbyStations: true}, prog.Text, m2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.IntAt(100) != 36 || res.Instructions != 4 {
		t.Error("RunMT wrong result")
	}

	m3 := NewMemory(128)
	rres, err := RunRISC(RISCConfig{}, prog.Text, m3)
	if err != nil {
		t.Fatal(err)
	}
	if m3.IntAt(100) != 36 || rres.CPI() <= 0 {
		t.Error("RunRISC wrong result")
	}
}

func TestFacadeTracedRun(t *testing.T) {
	prog, err := Assemble("li r1, 1\nadd r2, r1, r1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	m := NewMemory(16)
	if _, err := RunMTTraced(MTConfig{ThreadSlots: 1, StandbyStations: true}, prog.Text, m, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"issue", "select", "bind"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("pipeline trace missing %q", want)
		}
	}
}

func TestFacadeTraceRecordReplay(t *testing.T) {
	prog, err := Assemble(`
		li   r1, 5
	loop:	lw   r2, 100(r1)
		add  r3, r3, r2
		addi r1, r1, -1
		bnez r1, loop
		sw   r3, 110(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory(128)
	recs, err := RecordTrace(prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	mix := TraceStats(recs)
	if mix.Loads != 5 || mix.Stores != 1 {
		t.Errorf("mix loads/stores = %d/%d, want 5/1", mix.Loads, mix.Stores)
	}
	res, err := ReplayTraces(MTConfig{ThreadSlots: 2, StandbyStations: true},
		[][]TraceRecord{recs, recs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 2*uint64(len(recs)) {
		t.Errorf("replayed %d instructions, want %d", res.Instructions, 2*len(recs))
	}
}

func TestFacadeScheduleBlock(t *testing.T) {
	prog, err := Assemble(`
		flw  f1, 100(r0)
		fmul f2, f1, f1
		lw   r1, 101(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	block := prog.Text[:3]
	for _, s := range []Strategy{ScheduleNone, ScheduleStrategyA, ScheduleStrategyB, ScheduleSWP} {
		out, err := ScheduleBlock(block, s, 4, 1)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(out) < len(block) {
			t.Errorf("%v: lost instructions", s)
		}
	}
}

func TestFacadeRemoteMemory(t *testing.T) {
	m := NewMemoryWithRemote(1024, 512, 100)
	if !m.IsRemote(600) || m.IsRemote(100) {
		t.Error("remote classification wrong")
	}
}

// TestAllFormatters drives every report formatter over real (small) runs.
func TestAllFormatters(t *testing.T) {
	small := RayTraceConfig{Rays: 16, Spheres: 4}

	t3, err := RunTable3(Table3Config{Workload: small, Products: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatTable3(t3), "Table 3")

	t4, err := RunTable4(Table4Config{N: 24, Slots: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatTable4(t4), "Table 4")

	rot, err := RunRotationSweep(small, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatRotationSweep(rot), "Rotation")

	pic, err := RunPrivateICache(small)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatPrivateICache(pic), "Private")

	util, err := UtilizationReport(small, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatUtilization(util, 2, 1), "LoadStore")

	fc, err := RunFiniteCache(small, 2, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatFiniteCache(fc, 2), "perfect")

	qd, err := RunQueueDepthAblation(16, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatQueueDepth(qd, 2), "depth")

	cmt, err := RunConcurrentMT(2, []int{2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatConcurrentMT(cmt), "suppressed")

	ib, err := RunIssueBandwidth(small, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatIssueBandwidth(ib), "Simultaneous")

	da, seq, err := RunDoacross(24, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatDoacross(da, seq, 24), "Doacross")

	swp, err := RunSWPAblation(24, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatSWPAblation(swp), "software pipelining")

	ur, err := RunUnrollAblation(48, []int{1, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatUnroll(ur), "unrolling")

	sd, err := RunStandbyDepth(small, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatStandbyDepth(sd, 2), "Standby")

	cv, err := RunSpeedupCurve(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatSpeedupCurveCSV(cv), "slots,speedup_1ls")

	mp, err := RunMultiprogram([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, FormatMultiprogram(mp), "multiprogramming")
}

func mustContain(t *testing.T, s, sub string) {
	t.Helper()
	if !strings.Contains(s, sub) {
		t.Errorf("output missing %q:\n%s", sub, s)
	}
}

func TestFullReportJSON(t *testing.T) {
	rep, err := RunFullReport(RayTraceConfig{Rays: 16, Spheres: 4}, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Table2 == nil || len(back.Table2.Cells) != len(rep.Table2.Cells) {
		t.Error("Table2 lost in JSON round trip")
	}
	if len(back.Curve) != 8 {
		t.Errorf("curve has %d points, want 8", len(back.Curve))
	}
}
