# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race lint vet analyzers verify-examples lint-interthread lint-bounds fuzz fmt trace-demo profile cpi-demo explore-demo self-profile-demo bench-report bench bench-check bench-history report-demo

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = every static check: go vet, the repository's custom Go analyzers,
# and the program verifier over the shipped examples.
lint: vet analyzers verify-examples lint-interthread lint-bounds

vet:
	$(GO) vet ./...

analyzers:
	$(GO) run ./tools/analyzers ./...

verify-examples:
	$(GO) run ./cmd/hirata-lint examples/programs

# Cross-thread abstract interpretation (L010-L014) over the shipped example
# programs and every paper workload's generated assembly (the Go test
# builds each generator and requires hirata.Lint to come back clean).
lint-interthread:
	$(GO) run ./cmd/hirata-lint -interthread examples/programs
	$(GO) test -run 'TestWorkloadsLintClean|TestExampleMinCLintClean' .

# Queue-protocol deadlock verification (L015-L017) and static performance
# bounds (docs/LINT.md, "Static performance bounds") over the shipped
# examples and every paper workload. The Go tests also check the
# differential property: static bound <= measured cycles on every program.
lint-bounds:
	$(GO) run ./cmd/hirata-lint -deadlock examples/programs
	$(GO) run ./cmd/hirata-lint -bound examples/programs
	$(GO) test -run 'TestWorkloadsDeadlockClean|TestBoundExamples|TestBoundWorkloads' .

# Short fuzz session against the MinC compiler (CI runs seeds only).
fuzz:
	$(GO) test -run xxx -fuzz FuzzCompile -fuzztime 30s ./internal/minc/

fmt:
	gofmt -w .

# Observability demos (docs/OBSERVABILITY.md). trace-demo writes a Perfetto
# timeline of the fib example — load fib-trace.json in ui.perfetto.dev.
trace-demo:
	$(GO) run ./cmd/hirata-sim -slots 2 -standby -metrics-interval 64 -chrome-trace fib-trace.json examples/programs/fib.s

# profile prints the per-PC hotspot report for the fib example.
profile:
	$(GO) run ./cmd/hirata-sim -slots 2 -standby -profile examples/programs/fib.s

# cpi-demo decomposes the 8-slot Table-2 ray trace: folded CPI stacks
# (feed raytrace-cpi.folded to flamegraph.pl), the critical path as JSON,
# and bounded what-if estimates for extra hardware on stderr.
cpi-demo:
	$(GO) run ./cmd/hirata-bench -table none -cpi-folded raytrace-cpi.folded -critpath-json raytrace-critpath.json -whatif "+1 alu,+1 ls,+1 slot"

# explore-demo runs the analytic design-space engine (docs/MODEL.md) on a
# CI-sized ray trace: calibrate on 4 runs, predict 1152 configurations,
# re-simulate the Pareto frontier, validate against Tables 2-5
# reproductions, and fail if any model error exceeds 15%. The JSON report
# (explore-report.json) is the CI artifact.
explore-demo:
	$(GO) run ./cmd/hirata-bench -explore -rays 48 -spheres 6 -n 50 -nodes 40 -explore-max-err 15 -explore-json explore-report.json

# self-profile-demo turns the observability machinery on the simulator
# itself (docs/OBSERVABILITY.md, "Host-level observability"): sampled
# cycle-loop phase attribution, the dirty-set opportunity report, a
# host-side Perfetto timeline (host-trace.json) and the JSON artifact
# (selfprofile.json) that benchdiff -history embeds, on a CI-sized ray
# trace.
self-profile-demo:
	$(GO) run ./cmd/hirata-bench -self-profile -rays 48 -spheres 6 -host-trace host-trace.json -self-profile-json selfprofile.json

# bench-report regenerates the JSON paper-reproduction report and records
# the 8-slot ray-trace Perfetto timeline (CI uploads both as artifacts).
# PARALLEL controls how many simulation cells run concurrently (0 = all
# CPUs, 1 = the sequential reference path); output is identical either way.
PARALLEL ?= 0
bench-report:
	$(GO) run ./cmd/hirata-bench -parallel $(PARALLEL) -chrome-trace raytrace-trace.json -json > bench-report.json

# bench runs the Go microbenchmarks the perf gate watches (docs/PERFORMANCE.md).
BENCH_COUNT ?= 5
bench:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorThroughput|BenchmarkRunNoObserver|BenchmarkConcurrentMTSingleRun|BenchmarkSweepParallel' -benchmem -count $(BENCH_COUNT) . ./internal/core | tee bench-out.txt

# bench-check compares bench-out.txt against the committed BENCH_sweep.json
# baseline and fails on a >10% ns/op regression.
bench-check: bench
	$(GO) run ./tools/benchdiff -baseline BENCH_sweep.json -in bench-out.txt

# report-demo exercises cross-run observability end to end
# (docs/OBSERVABILITY.md, "Cross-run observability"): record the standard
# 8-slot ray trace under two configurations (1 vs 2 load/store units) into
# a content-addressed ledger, print the exact cycle-delta attribution
# between them, and the per-lineage trajectory. Re-running records nothing
# new — identical runs dedup by content hash.
report-demo:
	$(GO) run ./cmd/hirata-report record -ledger runs.ledger -tag ray8-ls1 -slots 8 -ls 1 -rays 48 -spheres 6
	$(GO) run ./cmd/hirata-report record -ledger runs.ledger -tag ray8-ls2 -slots 8 -ls 2 -rays 48 -spheres 6
	$(GO) run ./cmd/hirata-report ls -ledger runs.ledger
	$(GO) run ./cmd/hirata-report diff -ledger runs.ledger
	$(GO) run ./tools/benchdiff -trend -ledger runs.ledger

# bench-history appends this bench run (with the self-profile phase
# breakdown) to BENCH_history.jsonl and prints the cross-run trend
# (docs/PERFORMANCE.md, "Benchmark history and host self-profiling").
bench-history: self-profile-demo
	$(GO) run ./tools/benchdiff -in bench-out.txt -history BENCH_history.jsonl -phases selfprofile.json
	$(GO) run ./tools/benchdiff -trend
