# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race lint vet analyzers verify-examples fuzz fmt

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = every static check: go vet, the repository's custom Go analyzers,
# and the program verifier over the shipped examples.
lint: vet analyzers verify-examples

vet:
	$(GO) vet ./...

analyzers:
	$(GO) run ./tools/analyzers ./...

verify-examples:
	$(GO) run ./cmd/hirata-lint examples/programs

# Short fuzz session against the MinC compiler (CI runs seeds only).
fuzz:
	$(GO) test -run xxx -fuzz FuzzCompile -fuzztime 30s ./internal/minc/

fmt:
	gofmt -w .
