package hirata

// Tests for the sample assembly programs under examples/programs/: every
// shipped .s file must assemble, run, and produce its documented results.

import (
	"os"
	"path/filepath"
	"testing"
)

func loadProgram(t *testing.T, name string) *Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "programs", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return prog
}

func TestSampleFib(t *testing.T) {
	prog := loadProgram(t, "fib.s")
	for _, machine := range []string{"risc", "mt"} {
		m, err := prog.NewMemory(128)
		if err != nil {
			t.Fatal(err)
		}
		switch machine {
		case "risc":
			if _, err := RunRISC(RISCConfig{}, prog.Text, m); err != nil {
				t.Fatal(err)
			}
		case "mt":
			if _, err := RunMT(MTConfig{ThreadSlots: 1, StandbyStations: true}, prog.Text, m); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.IntAt(100); got != 6765 { // fib(20)
			t.Errorf("%s: fib(20) = %d, want 6765", machine, got)
		}
	}
}

func TestSampleDotprod(t *testing.T) {
	prog := loadProgram(t, "dotprod.s")
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMT(MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}, prog.Text, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forks != 3 {
		t.Errorf("forks = %d, want 3", res.Forks)
	}
	var total int64
	base := prog.MustSymbol("partials")
	for i := int64(0); i < 4; i++ {
		total += m.IntAt(base + i)
	}
	// dot(x, y) with x[i]=i, y[i]=2, n=64: 2 * 63*64/2 = 4032
	if total != 4032 {
		t.Errorf("dot product = %d, want 4032", total)
	}
}

func TestSamplePipeline(t *testing.T) {
	prog := loadProgram(t, "pipeline.s")
	m, err := prog.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMT(MTConfig{ThreadSlots: 3, StandbyStations: true}, prog.Text, m); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		want := (i + 1) * (i + 1)
		if got := m.IntAt(100 + i); got != want {
			t.Errorf("stage output[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestAllSamplesAssemble keeps every shipped program assembling even if a
// test above does not exercise it.
func TestAllSamplesAssemble(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("examples", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".s" {
			continue
		}
		n++
		loadProgram(t, e.Name())
	}
	if n < 3 {
		t.Errorf("only %d sample programs found", n)
	}
}

func TestSampleMandelMinC(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "programs", "mandel.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileMinC(string(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{1, 4, 8} {
		m, err := prog.NewMemory(1024)
		if err != nil {
			t.Fatal(err)
		}
		SetMinCThreads(prog, m, slots)
		if _, err := RunMT(MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true}, prog.Text, m); err != nil {
			t.Fatal(err)
		}
		// Differential check against the same computation in Go.
		base := prog.MustSymbol("iters")
		const width, maxiter = 64, 32
		for x := 0; x < width; x++ {
			cr := -2.0 + 2.8*float64(x)/float64(width)
			ci := 0.1
			zr, zi := 0.0, 0.0
			n := 0
			for n < maxiter && zr*zr+zi*zi < 4.0 {
				zr, zi = zr*zr-zi*zi+cr, 2.0*zr*zi+ci
				n++
			}
			if got := m.IntAt(base + int64(x)); got != int64(n) {
				t.Errorf("slots=%d: iters[%d] = %d, want %d", slots, x, got, n)
			}
		}
	}
}

func TestSampleSort(t *testing.T) {
	prog := loadProgram(t, "sort.s")
	m, err := prog.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMT(MTConfig{ThreadSlots: 4, LoadStoreUnits: 2, StandbyStations: true}, prog.Text, m); err != nil {
		t.Fatal(err)
	}
	base := prog.MustSymbol("arr")
	for i := int64(0); i < 16; i++ {
		if got := m.IntAt(base + i); got != i {
			t.Errorf("arr[%d] = %d, want %d (not sorted)", i, got, i)
		}
	}
}

func TestSampleMatmulMinC(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "programs", "matmul.mc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileMinC(string(src))
	if err != nil {
		t.Fatal(err)
	}
	const dim = 12
	for _, slots := range []int{1, 4} {
		m, err := prog.NewMemory(1024)
		if err != nil {
			t.Fatal(err)
		}
		SetMinCThreads(prog, m, slots)
		if _, err := RunMT(MTConfig{ThreadSlots: slots, LoadStoreUnits: 2, StandbyStations: true}, prog.Text, m); err != nil {
			t.Fatal(err)
		}
		base := prog.MustSymbol("c")
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				want := 0.0
				for k := 0; k < dim; k++ {
					want += float64(i+k) * float64(k-j)
				}
				if got := m.FloatAt(base + int64(i*dim+j)); got != want {
					t.Fatalf("slots=%d: c[%d][%d] = %g, want %g", slots, i, j, got, want)
				}
			}
		}
	}
}
