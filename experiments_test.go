package hirata

import (
	"strings"
	"testing"

	"hirata/internal/isa"
)

// Small workload sizes keep the shape tests fast; the benchmark harness
// uses the full sizes.
var testRT = RayTraceConfig{Rays: 64, Spheres: 8}

func TestTable2Shape(t *testing.T) {
	tb, err := RunTable2(Table2Config{Workload: testRT})
	if err != nil {
		t.Fatal(err)
	}
	get := func(slots, ls int, sb bool) Table2Cell {
		c, ok := tb.Cell(slots, ls, sb)
		if !ok {
			t.Fatalf("missing cell (%d,%d,%v)", slots, ls, sb)
		}
		return c
	}

	// Two threads roughly double throughput (paper: 1.79-2.02).
	if sp := get(2, 2, true).Speedup; sp < 1.6 || sp > 2.2 {
		t.Errorf("2-slot 2-ls speed-up = %.2f, want about 2 (paper 2.02)", sp)
	}
	// Speed-up grows with thread slots for both unit configurations.
	for _, ls := range []int{1, 2} {
		prev := 0.0
		for _, slots := range []int{2, 4, 8} {
			sp := get(slots, ls, true).Speedup
			if sp <= prev {
				t.Errorf("speed-up not increasing at %d slots, %d ls: %.2f <= %.2f", slots, ls, sp, prev)
			}
			prev = sp
		}
	}
	// One load/store unit saturates: at 8 slots the second unit buys a lot
	// (paper: 3.22 vs 5.79), and the busiest unit is the load/store unit
	// near full utilization (paper: 99%).
	c81 := get(8, 1, true)
	c82 := get(8, 2, true)
	if c82.Speedup < c81.Speedup*1.3 {
		t.Errorf("no load/store saturation: 8-slot speed-ups %.2f (1 ls) vs %.2f (2 ls)", c81.Speedup, c82.Speedup)
	}
	if c81.BusiestClass != isa.UnitLoadStore {
		t.Errorf("busiest unit at 8 slots = %s, want LoadStore", c81.BusiestClass)
	}
	if c81.BusiestUtil < 90 {
		t.Errorf("load/store utilization at 8 slots = %.0f%%, want >= 90%% (paper 99%%)", c81.BusiestUtil)
	}
	// Standby stations help a little (paper: 0-2.2%), and never hurt much.
	for _, slots := range []int{2, 4, 8} {
		for _, ls := range []int{1, 2} {
			with := get(slots, ls, true)
			without := get(slots, ls, false)
			if float64(with.Cycles) > float64(without.Cycles)*1.02 {
				t.Errorf("standby stations hurt at %d slots, %d ls: %d vs %d cycles",
					slots, ls, with.Cycles, without.Cycles)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := RunTable3(Table3Config{Workload: testRT})
	if err != nil {
		t.Fatal(err)
	}
	get := func(d, s int) float64 {
		c, ok := tb.Cell(d, s)
		if !ok {
			t.Fatalf("missing cell (%d,%d)", d, s)
		}
		return c.Speedup
	}
	// §3.3's conclusion: increasing S produces a more significant speed-up
	// than increasing D; D=1 is the most cost-effective at every budget.
	for _, prod := range []int{2, 4, 8} {
		best := get(1, prod)
		for d := 2; d <= prod; d *= 2 {
			if sp := get(d, prod/d); sp >= best {
				t.Errorf("budget %d: (D=%d,S=%d) speed-up %.2f >= (1,%d) %.2f",
					prod, d, prod/d, sp, prod, best)
			}
		}
	}
	// More slots always beat fewer at D=1.
	if !(get(1, 8) > get(1, 4) && get(1, 4) > get(1, 2)) {
		t.Errorf("S-scaling not monotone: %v %v %v", get(1, 2), get(1, 4), get(1, 8))
	}
	// Superscalar width still helps a single thread somewhat.
	if get(2, 1) <= 1.0 {
		t.Errorf("(2,1) speed-up = %.2f, want > 1", get(2, 1))
	}
}

func TestTable4Shape(t *testing.T) {
	tb, err := RunTable4(Table4Config{N: 120, Slots: []int{1, 2, 4, 6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	get := func(slots int, s Strategy) float64 {
		c, ok := tb.Cell(slots, s)
		if !ok {
			t.Fatalf("missing cell (%d,%v)", slots, s)
		}
		return c.CyclesPerIter
	}
	// Strategy A shortens the naive code at one slot (paper: 50 -> 42).
	if a, n := get(1, ScheduleStrategyA), get(1, ScheduleNone); a >= n {
		t.Errorf("strategy A not faster at 1 slot: %.1f >= %.1f", a, n)
	}
	// Cycles per iteration fall with slot count for every strategy.
	for _, strat := range []Strategy{ScheduleNone, ScheduleStrategyA, ScheduleStrategyB} {
		prev := 1e18
		for _, slots := range []int{1, 2, 4, 8} {
			v := get(slots, strat)
			if v >= prev {
				t.Errorf("%v: cycles/iter not decreasing at %d slots: %.2f >= %.2f", strat, slots, v, prev)
			}
			prev = v
		}
	}
	// Performance saturates near the paper's bound: one load/store unit
	// and (3+1) memory ops x 2-cycle issue latency = 8 cycles/iteration.
	for _, strat := range []Strategy{ScheduleStrategyA, ScheduleStrategyB} {
		v := get(8, strat)
		if v < 8 {
			t.Errorf("%v at 8 slots: %.2f cycles/iter below the 8-cycle structural bound", strat, v)
		}
		if v > 10.5 {
			t.Errorf("%v at 8 slots: %.2f cycles/iter, want near 8 (paper: 8)", strat, v)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tb, err := RunTable5(Table5Config{Nodes: 120})
	if err != nil {
		t.Fatal(err)
	}
	get := func(slots int) float64 {
		c, ok := tb.Cell(slots)
		if !ok {
			t.Fatalf("missing cell %d", slots)
		}
		return c.CyclesPerIter
	}
	// Paper: 32.5 / 21.67 / 17 for 2 / 3 / 4 slots; speed-up limited by
	// the inter-iteration pointer dependence; flat beyond ~4 slots.
	if !(get(2) > get(3) && get(3) > get(4)) {
		t.Errorf("cycles/iter not decreasing: %v %v %v", get(2), get(3), get(4))
	}
	if ratio := get(8) / get(4); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("no saturation beyond 4 slots: %.2f vs %.2f", get(8), get(4))
	}
	if tb.SequentialPerIt < 35 || tb.SequentialPerIt > 70 {
		t.Errorf("sequential cycles/iter = %.1f, want around 50 (paper 56)", tb.SequentialPerIt)
	}
	sp := tb.SequentialPerIt / get(8)
	if sp < 2.2 || sp > 4.5 {
		t.Errorf("asymptotic speed-up = %.2f, want around 3 (paper 3.29)", sp)
	}
}

func TestRotationSweepFlat(t *testing.T) {
	cells, err := RunRotationSweep(testRT, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("got %d cells, want 9 (2^0..2^8)", len(cells))
	}
	lo, hi := cells[0].Cycles, cells[0].Cycles
	for _, c := range cells {
		if c.Cycles < lo {
			lo = c.Cycles
		}
		if c.Cycles > hi {
			hi = c.Cycles
		}
	}
	// §3.2: "rotation interval did not have much influence".
	if float64(hi) > 1.1*float64(lo) {
		t.Errorf("rotation interval changed cycles by more than 10%%: %d..%d", lo, hi)
	}
}

func TestPrivateICacheNearlyFree(t *testing.T) {
	cells, err := RunPrivateICache(testRT)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		// §3.2: private fetch units buy almost nothing (1.79->1.80). Small
		// shifts in either direction are phase-alignment noise — private
		// fetch puts the threads more in lockstep, which can slightly
		// increase functional-unit conflicts.
		if c.PrivateSpeedup < c.SharedSpeedup*0.95 {
			t.Errorf("private icache much slower: %.3f vs %.3f (%d slots)", c.PrivateSpeedup, c.SharedSpeedup, c.Slots)
		}
		if c.PrivateSpeedup > c.SharedSpeedup*1.15 {
			t.Errorf("shared icache was a bottleneck: %.3f vs %.3f (%d slots); the paper found sharing nearly free",
				c.PrivateSpeedup, c.SharedSpeedup, c.Slots)
		}
	}
}

func TestConcurrentMTHidesLatency(t *testing.T) {
	cells, err := RunConcurrentMT(4, []int{4}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	suppressed, switching := cells[0], cells[1]
	if !suppressed.Suppressed || suppressed.Switches != 0 {
		t.Fatalf("baseline cell wrong: %+v", suppressed)
	}
	if switching.Switches == 0 {
		t.Error("no context switches with spare frames")
	}
	if switching.Cycles >= suppressed.Cycles {
		t.Errorf("context switching did not hide latency: %d >= %d cycles",
			switching.Cycles, suppressed.Cycles)
	}
}

func TestFiniteCacheSweep(t *testing.T) {
	cells, err := RunFiniteCache(RayTraceConfig{Rays: 32, Spheres: 8}, 4, []int{256, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	if !(cells[1].Cycles >= cells[0].Cycles && cells[2].Cycles > cells[1].Cycles) {
		t.Errorf("smaller caches not slower: %d, %d, %d cycles",
			cells[0].Cycles, cells[1].Cycles, cells[2].Cycles)
	}
}

func TestQueueDepthAblation(t *testing.T) {
	cells, err := RunQueueDepthAblation(80, 4, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Deeper queues must not slow the loop down (the chain is the limit).
	for i := 1; i < len(cells); i++ {
		if cells[i].CyclesPerIter > cells[i-1].CyclesPerIter*1.05 {
			t.Errorf("depth %d slower than depth %d: %.2f vs %.2f",
				cells[i].Depth, cells[i-1].Depth, cells[i].CyclesPerIter, cells[i-1].CyclesPerIter)
		}
	}
}

func TestIssueBandwidthAblation(t *testing.T) {
	cells, err := RunIssueBandwidth(testRT, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		// Simultaneous issue must beat the single-issue precursors, and
		// the gap must widen with thread count (the paper's raison d'être).
		if c.Simultaneous <= c.SingleIssue {
			t.Errorf("%d slots: simultaneous %.2f <= single-issue %.2f",
				c.Slots, c.Simultaneous, c.SingleIssue)
		}
		// A single shared issue slot sustains at most ~1 instruction per
		// cycle, so its speed-up tops out near the baseline's CPI (~2.3)
		// no matter how many threads are added.
		if c.SingleIssue > 3.2 {
			t.Errorf("%d slots: single-issue speed-up %.2f exceeds the 1-IPC bound", c.Slots, c.SingleIssue)
		}
	}
	if len(cells) == 2 && cells[1].Simultaneous/cells[1].SingleIssue <= cells[0].Simultaneous/cells[0].SingleIssue {
		t.Error("simultaneous-issue advantage did not grow with thread count")
	}
}

func TestFormatters(t *testing.T) {
	t2, err := RunTable2(Table2Config{Workload: RayTraceConfig{Rays: 16, Spheres: 4}, Slots: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatTable2(t2); len(s) == 0 || !strings.Contains(s, "Table 2") {
		t.Error("FormatTable2 output broken")
	}
	t5, err := RunTable5(Table5Config{Nodes: 24, Slots: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatTable5(t5); !strings.Contains(s, "Table 5") {
		t.Error("FormatTable5 output broken")
	}
}

func TestMultiprogramThroughput(t *testing.T) {
	cells, err := RunMultiprogram([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, c := range cells {
		// Running S independent jobs simultaneously must beat running
		// them back to back, and the gain must grow with slots until the
		// shared units saturate.
		if c.Throughput < 1.2 {
			t.Errorf("%d slots: multiprogrammed throughput %.2f barely beats serial", c.Slots, c.Throughput)
		}
		if c.Throughput < prev*0.95 {
			t.Errorf("%d slots: throughput regressed: %.2f < %.2f", c.Slots, c.Throughput, prev)
		}
		prev = c.Throughput
	}
}

func TestStandbyDepthAblation(t *testing.T) {
	cells, err := RunStandbyDepth(testRT, 4, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Deeper stations must never hurt and the returns must diminish: the
	// paper's depth-1 design should already capture most of the benefit.
	for i := 1; i < len(cells); i++ {
		if cells[i].Cycles > cells[i-1].Cycles+cells[i-1].Cycles/50 {
			t.Errorf("depth %d slower than depth %d: %d vs %d",
				cells[i].Depth, cells[i-1].Depth, cells[i].Cycles, cells[i-1].Cycles)
		}
	}
	gain1to8 := float64(cells[0].Cycles) / float64(cells[len(cells)-1].Cycles)
	if gain1to8 > 1.25 {
		t.Errorf("depth 8 gains %.2fx over depth 1 — depth-1 latches should be nearly enough", gain1to8)
	}
	mustContain(t, FormatStandbyDepth(cells, 4), "depth")
}

func TestBranchHiding(t *testing.T) {
	cells, seq, err := RunBranchHiding([]int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("no baseline")
	}
	// Single-thread MT loses to the RISC baseline (5- vs 4-cycle branch
	// delay); many threads hide the bubbles and scale well.
	if cells[0].Speedup >= 1.0 {
		t.Errorf("1-slot speed-up %.2f, want < 1 (longer pipeline hurts single thread)", cells[0].Speedup)
	}
	last := cells[len(cells)-1]
	// With a shared fetch unit the refetch traffic of eight branchy
	// threads saturates fetch around 3x; per-slot fetch units remove the
	// bottleneck and let the branch bubbles be fully hidden.
	if last.Speedup < 2.5 {
		t.Errorf("8-slot shared-fetch speed-up %.2f, want > 2.5", last.Speedup)
	}
	if last.PrivateSpeedup < last.Speedup*1.3 {
		t.Errorf("private fetch units did not relieve the fetch bottleneck: %.2f vs %.2f",
			last.PrivateSpeedup, last.Speedup)
	}
	mustContain(t, FormatBranchHiding(cells, seq), "Branch-delay")
}
