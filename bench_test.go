package hirata

// Benchmarks regenerating the paper's evaluation, one family per table.
// Each benchmark iteration is one complete simulation; the interesting
// output is the reported custom metrics (simulated cycles and speed-up vs
// the sequential baseline), which correspond to the paper's table cells.
// Run `go run ./cmd/hirata-bench` for the full paper-vs-measured report.

import (
	"fmt"
	"sync"
	"testing"

	"hirata/internal/core"
	"hirata/internal/risc"
)

// benchRT is the benchmark workload (smaller than the full harness run to
// keep -bench wall time reasonable; the shape is identical).
var benchRT = RayTraceConfig{Rays: 96, Spheres: 10}

var (
	benchOnce     sync.Once
	benchWorkload *RayTrace
	benchBaseline [3]uint64 // sequential cycles by load/store units
)

func benchSetup(b *testing.B) *RayTrace {
	b.Helper()
	benchOnce.Do(func() {
		rt, err := BuildRayTrace(benchRT)
		if err != nil {
			panic(err)
		}
		benchWorkload = rt
		for _, ls := range []int{1, 2} {
			m, err := rt.NewMemory(rt.Seq, 1)
			if err != nil {
				panic(err)
			}
			res, err := RunRISC(risc.Config{LoadStoreUnits: ls}, rt.Seq.Text, m)
			if err != nil {
				panic(err)
			}
			benchBaseline[ls] = res.Cycles
		}
	})
	return benchWorkload
}

// benchMT runs one multithreaded ray-trace simulation per iteration and
// reports simulated cycles and speed-up.
func benchMT(b *testing.B, cfg core.Config) {
	rt := benchSetup(b)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rt.NewMemory(rt.Par, cfg.ThreadSlots)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunMT(cfg, rt.Par.Text, m)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	b.ReportMetric(float64(benchBaseline[cfg.LoadStoreUnits])/float64(cycles), "speedup")
}

// BenchmarkBaselineRISC measures the sequential reference machine.
func BenchmarkBaselineRISC(b *testing.B) {
	for _, ls := range []int{1, 2} {
		b.Run(fmt.Sprintf("LS%d", ls), func(b *testing.B) {
			rt := benchSetup(b)
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := rt.NewMemory(rt.Seq, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunRISC(risc.Config{LoadStoreUnits: ls}, rt.Seq.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: slots × load/store units × standby.
func BenchmarkTable2(b *testing.B) {
	for _, slots := range []int{2, 4, 8} {
		for _, ls := range []int{1, 2} {
			for _, standby := range []bool{false, true} {
				name := fmt.Sprintf("S%d/LS%d/standby=%v", slots, ls, standby)
				b.Run(name, func(b *testing.B) {
					benchMT(b, core.Config{
						ThreadSlots:     slots,
						LoadStoreUnits:  ls,
						StandbyStations: standby,
					})
				})
			}
		}
	}
}

// BenchmarkTable2PrivateICache regenerates the §3.2 variant experiment.
func BenchmarkTable2PrivateICache(b *testing.B) {
	for _, slots := range []int{2, 8} {
		b.Run(fmt.Sprintf("S%d", slots), func(b *testing.B) {
			benchMT(b, core.Config{
				ThreadSlots:     slots,
				LoadStoreUnits:  2,
				StandbyStations: true,
				PrivateICache:   true,
			})
		})
	}
}

// BenchmarkRotationInterval regenerates the §3.2 rotation sweep.
func BenchmarkRotationInterval(b *testing.B) {
	for n := 0; n <= 8; n += 2 {
		b.Run(fmt.Sprintf("interval%d", 1<<n), func(b *testing.B) {
			benchMT(b, core.Config{
				ThreadSlots:      4,
				LoadStoreUnits:   1,
				StandbyStations:  true,
				RotationInterval: 1 << n,
			})
		})
	}
}

// BenchmarkTable3 regenerates Table 3: the hybrid (D,S) grid.
func BenchmarkTable3(b *testing.B) {
	for _, prod := range []int{2, 4, 8} {
		for d := 1; d <= prod; d *= 2 {
			s := prod / d
			b.Run(fmt.Sprintf("D%d/S%d", d, s), func(b *testing.B) {
				benchMT(b, core.Config{
					ThreadSlots:     s,
					LoadStoreUnits:  2,
					StandbyStations: true,
					IssueWidth:      d,
				})
			})
		}
	}
}

// BenchmarkTable4 regenerates Table 4: Livermore Kernel 1 under the three
// scheduling strategies.
func BenchmarkTable4(b *testing.B) {
	const n = 160
	for _, strat := range []Strategy{ScheduleNone, ScheduleStrategyA, ScheduleStrategyB} {
		for _, slots := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/S%d", strat, slots)
			b.Run(name, func(b *testing.B) {
				lv, err := BuildLivermore(LivermoreConfig{
					N: n, Threads: slots, Strategy: strat, LoadStoreUnits: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				prog := lv.Par
				if slots == 1 {
					prog = lv.Seq
				}
				var cycles uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := prog.NewMemory(64)
					if err != nil {
						b.Fatal(err)
					}
					res, err := RunMT(core.Config{
						ThreadSlots:     slots,
						LoadStoreUnits:  1,
						StandbyStations: true,
					}, prog.Text, m)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(cycles)/float64(n), "cycles/iter")
			})
		}
	}
}

// BenchmarkTable5 regenerates Table 5: eager execution of the while loop.
func BenchmarkTable5(b *testing.B) {
	const nodes = 160
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: nodes, BreakAt: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			m, err := ll.NewMemory(ll.Seq, 1)
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunRISC(risc.Config{LoadStoreUnits: 1}, ll.Seq.Text, m)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles)/float64(nodes), "cycles/iter")
	})
	for _, slots := range []int{2, 3, 4, 8} {
		b.Run(fmt.Sprintf("S%d", slots), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := ll.NewMemory(ll.Par, slots)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunMT(core.Config{
					ThreadSlots:     slots,
					LoadStoreUnits:  1,
					StandbyStations: true,
				}, ll.Par.Text, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(nodes), "cycles/iter")
		})
	}
}

// BenchmarkConcurrentMT measures context switching on remote loads
// (§2.1.3, the paper's outlined-but-unevaluated mechanism).
func BenchmarkConcurrentMT(b *testing.B) {
	for _, suppressed := range []bool{true, false} {
		name := "switching"
		if suppressed {
			name = "suppressed"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cells, err := RunConcurrentMT(4, []int{4}, 300)
				if err != nil {
					b.Fatal(err)
				}
				if suppressed {
					cycles = cells[0].Cycles
				} else {
					cycles = cells[1].Cycles
				}
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkConcurrentMTSingleRun measures one high-remote-latency
// concurrent-multithreading simulation — the workload where quiescent-cycle
// skipping pays: with 300-cycle remote loads most simulated cycles have no
// running slot and are jumped over instead of stepped.
func BenchmarkConcurrentMTSingleRun(b *testing.B) {
	prog, err := Assemble(concurrentMTSrc)
	if err != nil {
		b.Fatal(err)
	}
	for _, noskip := range []bool{false, true} {
		name := "skip"
		if noskip {
			name = "noskip"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m := NewMemoryWithRemote(8192, 4096, 300)
				for a := int64(4096); a < 8192; a++ {
					m.SetInt(a, a%97)
				}
				res, err := RunMT(MTConfig{
					ThreadSlots:      1,
					ContextFrames:    4,
					StandbyStations:  true,
					DisableCycleSkip: noskip,
				}, prog.Text, m, 0, 0, 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSweepParallel measures the Table 2 sweep end to end through the
// sweep engine, sequentially and at full host parallelism. On a multi-core
// host the speed-up approaches min(NumCPU, independent cells).
func BenchmarkSweepParallel(b *testing.B) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 0} {
		name := "seq"
		if workers == 0 {
			name = "ncpu"
		}
		b.Run(name, func(b *testing.B) {
			SetParallelism(workers)
			for i := 0; i < b.N; i++ {
				if _, err := RunTable2(Table2Config{Workload: benchRT}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (host cycles
// per simulated cycle), useful for tracking simulator performance.
func BenchmarkSimulatorThroughput(b *testing.B) {
	rt := benchSetup(b)
	m, err := rt.NewMemory(rt.Par, 8)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunMT(core.Config{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}, rt.Par.Text, m)
	if err != nil {
		b.Fatal(err)
	}
	simCycles := res.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := rt.NewMemory(rt.Par, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunMT(core.Config{ThreadSlots: 8, LoadStoreUnits: 2, StandbyStations: true}, rt.Par.Text, m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(simCycles)*float64(b.N)/b.Elapsed().Seconds(), "sim-cycles/s")
}
