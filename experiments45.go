package hirata

import (
	"fmt"

	"hirata/internal/core"
	"hirata/internal/risc"
	"hirata/internal/sched"
)

// Table4Config parameterises the static code scheduling study (paper §3.4,
// Table 4): Livermore Kernel 1 on a one-load/store-unit machine.
type Table4Config struct {
	N     int   // loop iterations (default 400)
	Slots []int // thread-slot counts (paper: 1..8)
}

func (c Table4Config) withDefaults() Table4Config {
	if c.N <= 0 {
		c.N = 400
	}
	if len(c.Slots) == 0 {
		c.Slots = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	return c
}

// Table4Cell is one measurement: average execution cycles per iteration.
type Table4Cell struct {
	Slots         int
	Strategy      Strategy
	TotalCycles   uint64
	CyclesPerIter float64
	// StaticBound is the provable lower bound on TotalCycles for this
	// cell's scheduled program and machine shape (StaticBounds); the gap
	// to TotalCycles is the headroom the schedule left on the table.
	StaticBound uint64
}

// Table4 is the full reproduction of Table 4.
type Table4 struct {
	Config Table4Config
	Cells  []Table4Cell
}

// Cell returns the measurement for a slot count and strategy.
func (t *Table4) Cell(slots int, s Strategy) (Table4Cell, bool) {
	for _, c := range t.Cells {
		if c.Slots == slots && c.Strategy == s {
			return c, true
		}
	}
	return Table4Cell{}, false
}

// RunTable4 reproduces Table 4: cycles per iteration of Livermore Kernel 1
// under the three scheduling strategies, for 1..8 thread slots on a
// one-load/store-unit processor. The single-slot row executes the
// sequential loop; multi-slot rows execute the doall version in
// explicit-rotation mode with a change-priority instruction per iteration.
func RunTable4(cfg Table4Config) (*Table4, error) {
	cfg = cfg.withDefaults()
	out := &Table4{Config: cfg}
	// Each (strategy, slots) cell builds its own scheduled program and
	// machine; the whole grid runs on the sweep engine.
	type spec struct {
		strat Strategy
		slots int
	}
	var specs []spec
	for _, strat := range []Strategy{sched.None, sched.StrategyA, sched.StrategyB} {
		for _, slots := range cfg.Slots {
			specs = append(specs, spec{strat: strat, slots: slots})
		}
	}
	cycles, err := runCells(len(specs), func(i int) (uint64, error) {
		sp := specs[i]
		lv, err := BuildLivermore(LivermoreConfig{
			N: cfg.N, Threads: sp.slots, Strategy: sp.strat, LoadStoreUnits: 1,
		})
		if err != nil {
			return 0, err
		}
		prog := lv.Par
		if sp.slots == 1 {
			prog = lv.Seq
		}
		m, err := prog.NewMemory(64)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     sp.slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
		}, prog.Text, m)
		if err != nil {
			return 0, fmt.Errorf("table 4 (%v, %d slots): %w", sp.strat, sp.slots, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		// Rebuild the cell's program to compute its static lower bound —
		// scheduling strategy and slot count both change the text.
		lv, err := BuildLivermore(LivermoreConfig{
			N: cfg.N, Threads: sp.slots, Strategy: sp.strat, LoadStoreUnits: 1,
		})
		if err != nil {
			return nil, err
		}
		prog := lv.Par
		if sp.slots == 1 {
			prog = lv.Seq
		}
		sb := StaticBounds(core.Config{
			ThreadSlots:     sp.slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
		}, prog.Text)
		bound := uint64(0)
		if !sb.Unbounded {
			bound = uint64(sb.Bound)
		}
		out.Cells = append(out.Cells, Table4Cell{
			Slots:         sp.slots,
			Strategy:      sp.strat,
			TotalCycles:   cycles[i],
			CyclesPerIter: float64(cycles[i]) / float64(cfg.N),
			StaticBound:   bound,
		})
	}
	return out, nil
}

// Table5Config parameterises the eager-execution study (paper §3.5,
// Table 5): the linked-list while loop on a one-load/store-unit machine.
type Table5Config struct {
	Nodes int   // list length (default 200)
	Slots []int // thread-slot counts (paper: 2, 3, 4)
}

func (c Table5Config) withDefaults() Table5Config {
	if c.Nodes <= 0 {
		c.Nodes = 200
	}
	if len(c.Slots) == 0 {
		c.Slots = []int{2, 3, 4, 6, 8}
	}
	return c
}

// Table5Cell is one measurement of eager execution.
type Table5Cell struct {
	Slots         int
	TotalCycles   uint64
	CyclesPerIter float64
	Speedup       float64 // vs the sequential traversal
}

// Table5 is the full reproduction of Table 5.
type Table5 struct {
	Config           Table5Config
	SequentialCycles uint64  // sequential traversal on the baseline machine
	SequentialPerIt  float64 // its cycles per iteration
	Cells            []Table5Cell
}

// Cell returns the measurement for a slot count.
func (t *Table5) Cell(slots int) (Table5Cell, bool) {
	for _, c := range t.Cells {
		if c.Slots == slots {
			return c, true
		}
	}
	return Table5Cell{}, false
}

// RunTable5 reproduces Table 5: average cycles per iteration of the eager
// execution of a sequential (pointer-chasing) while loop.
func RunTable5(cfg Table5Config) (*Table5, error) {
	cfg = cfg.withDefaults()
	ll, err := BuildLinkedList(LinkedListConfig{Nodes: cfg.Nodes, BreakAt: -1})
	if err != nil {
		return nil, err
	}
	out := &Table5{Config: cfg}

	// Cell 0 is the sequential baseline; cells 1.. sweep the slot counts.
	cycles, err := runCells(1+len(cfg.Slots), func(i int) (uint64, error) {
		if i == 0 {
			mSeq, err := ll.NewMemory(ll.Seq, 1)
			if err != nil {
				return 0, err
			}
			seq, err := RunRISC(risc.Config{LoadStoreUnits: 1}, ll.Seq.Text, mSeq)
			if err != nil {
				return 0, fmt.Errorf("table 5 baseline: %w", err)
			}
			return seq.Cycles, nil
		}
		slots := cfg.Slots[i-1]
		m, err := ll.NewMemory(ll.Par, slots)
		if err != nil {
			return 0, err
		}
		res, err := RunMT(core.Config{
			ThreadSlots:     slots,
			LoadStoreUnits:  1,
			StandbyStations: true,
		}, ll.Par.Text, m)
		if err != nil {
			return 0, fmt.Errorf("table 5 (%d slots): %w", slots, err)
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	out.SequentialCycles = cycles[0]
	out.SequentialPerIt = float64(cycles[0]) / float64(cfg.Nodes)
	for i, slots := range cfg.Slots {
		out.Cells = append(out.Cells, Table5Cell{
			Slots:         slots,
			TotalCycles:   cycles[i+1],
			CyclesPerIter: float64(cycles[i+1]) / float64(cfg.Nodes),
			Speedup:       float64(cycles[0]) / float64(cycles[i+1]),
		})
	}
	return out, nil
}
