package hirata_test

// Event-core differential over the MinC fuzz corpus: every corpus entry
// that compiles and runs must produce a bit-identical Result and memory
// image on the legacy scan loop and the event-driven core. The fuzzer's
// job is to find control shapes the curated examples miss (degenerate
// loops, dead branches, deep expression spills); whatever it keeps must
// not tell the two cores apart.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hirata"
)

func TestEventCoreDifferentialFuzzCorpus(t *testing.T) {
	dir := filepath.Join("internal", "minc", "testdata", "fuzz", "FuzzCompile")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no fuzz corpus: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		src, ok := corpusString(string(data))
		if !ok {
			continue
		}
		prog, err := hirata.CompileMinC(src)
		if err != nil {
			continue // the fuzzer keeps crashers and rejects alike
		}
		for _, slots := range []int{1, 4} {
			slots := slots
			t.Run(fmt.Sprintf("%s/S%d", e.Name(), slots), func(t *testing.T) {
				type outcome struct {
					res hirata.MTResult
					err string
					mem []uint64
				}
				var got [2]outcome
				for i, disable := range []bool{true, false} {
					cfg := hirata.MTConfig{
						ThreadSlots:      slots,
						LoadStoreUnits:   2,
						StandbyStations:  true,
						MaxCycles:        2_000_000,
						DisableEventCore: disable,
					}
					m, err := prog.NewMemory(4096)
					if err != nil {
						t.Skipf("memory: %v", err)
					}
					hirata.SetMinCThreads(prog, m, slots)
					res, err := hirata.RunMT(cfg, prog.Text, m)
					got[i].res = res
					if err != nil {
						// Runaway/deadlock corpus entries must fail the same
						// way on both cores, at the same cycle.
						got[i].err = err.Error()
					}
					words := make([]uint64, m.Size())
					for a := int64(0); a < m.Size(); a++ {
						v, lerr := m.Load(a)
						if lerr != nil {
							t.Fatal(lerr)
						}
						words[a] = v
					}
					got[i].mem = words
				}
				if got[0].err != got[1].err {
					t.Fatalf("error differs between cores:\n  legacy: %q\n  event:  %q", got[0].err, got[1].err)
				}
				if !reflect.DeepEqual(got[0].res, got[1].res) {
					t.Errorf("Result differs between cores:\n  legacy: %+v\n  event:  %+v", got[0].res, got[1].res)
				}
				if !reflect.DeepEqual(got[0].mem, got[1].mem) {
					t.Error("final memory image differs between cores")
				}
			})
		}
	}
}
